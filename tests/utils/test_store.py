"""Property and invariant tests for the content-addressed sharded store.

The hypothesis suites drive :class:`ShardedStore` through randomized
operation sequences and assert the two contracts the sweep machinery
leans on:

* every manifest entry resolves to a readable artifact, and stored
  bytes never exceed the configured cap (absent pins);
* LRU eviction never drops a pinned entry, no matter the pressure.

The example-based tests cover the flat-layout migration path (read
through + upgrade in place), corrupt-blob quarantine accounting, and
the per-shard resumable integrity scrub.
"""

import json
import tempfile
from pathlib import Path

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.runtime.store import (
    CacheStats,
    ShardedStore,
    atomic_write,
    content_hash,
)
from repro.utils.cache import DiskCache

pytestmark = pytest.mark.tier1

# A small pool of distinct payloads; sizes differ so eviction pressure
# varies, and index 0 == index 1 content-wise to exercise dedup.
_PAYLOADS = [
    {"x": np.arange(64, dtype=np.float64)},
    {"x": np.arange(64, dtype=np.float64)},
    {"x": np.ones((32, 8), dtype=np.float32), "y": np.arange(5)},
    {"x": np.zeros(512, dtype=np.float64)},
    {"a": np.full(256, 7, dtype=np.int64)},
]
_KEYS = [f"k{i}" for i in range(6)]

_ops = st.lists(
    st.one_of(
        st.tuples(st.just("put"), st.integers(0, len(_KEYS) - 1),
                  st.integers(0, len(_PAYLOADS) - 1)),
        st.tuples(st.just("get"), st.integers(0, len(_KEYS) - 1)),
        st.tuples(st.just("delete"), st.integers(0, len(_KEYS) - 1)),
    ),
    min_size=1, max_size=25,
)


def _blob_bytes(store):
    return sum(p.stat().st_size
               for p in store.shards_dir.glob("*/*.npz") if p.is_file())


class TestStoreInvariants:
    """Randomized sequences preserve the manifest/cap contract."""

    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(ops=_ops, cap_kib=st.integers(2, 12))
    def test_entries_resolve_and_bytes_bounded(self, ops, cap_kib):
        """Every manifest entry resolves to a readable artifact and
        total stored bytes stay <= the cap (the ISSUE 8 store invariant)."""
        with tempfile.TemporaryDirectory() as root:
            cap = cap_kib * 1024
            store = ShardedStore(root, shards=8, max_bytes=cap)
            model = {}
            for op in ops:
                if op[0] == "put":
                    _, ki, pi = op
                    store.put("ns", _KEYS[ki], _PAYLOADS[pi])
                    model[_KEYS[ki]] = pi
                elif op[0] == "get":
                    try:
                        store.get("ns", _KEYS[op[1]])
                    except KeyError:
                        pass
                else:
                    store.delete("ns", _KEYS[op[1]])
                    model.pop(_KEYS[op[1]], None)

            assert store.total_bytes() <= cap
            for entry in store.entries():
                arrays = store.get(entry.namespace, entry.key)
                want = _PAYLOADS[model[entry.key]]
                assert sorted(arrays) == sorted(want)
                for name in want:
                    np.testing.assert_array_equal(arrays[name], want[name])

    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(ops=_ops, pinned=st.sets(st.integers(0, len(_KEYS) - 1),
                                    min_size=1, max_size=3))
    def test_eviction_never_drops_pinned(self, ops, pinned):
        """Pinned entries survive arbitrary eviction pressure."""
        with tempfile.TemporaryDirectory() as root:
            # Cap far below the pinned payloads' footprint: every put
            # triggers eviction, so only the pin check protects them.
            store = ShardedStore(root, shards=8, max_bytes=1024)
            protected = {}
            for ki in sorted(pinned):
                payload = _PAYLOADS[ki % len(_PAYLOADS)]
                # Pin before put: put itself triggers eviction, and the
                # pin contract must already hold during that pass.
                store.pin("pinned", _KEYS[ki])
                store.put("pinned", _KEYS[ki], payload)
                protected[_KEYS[ki]] = payload
            for op in ops:
                if op[0] == "put":
                    store.put("ns", _KEYS[op[1]], _PAYLOADS[op[2]])
                elif op[0] == "get":
                    try:
                        store.get("ns", _KEYS[op[1]])
                    except KeyError:
                        pass
                else:
                    store.delete("ns", _KEYS[op[1]])

            for key, payload in protected.items():
                arrays = store.get("pinned", key)
                for name in payload:
                    np.testing.assert_array_equal(arrays[name], payload[name])

    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(keys=st.sets(st.integers(0, len(_KEYS) - 1), min_size=2))
    def test_dedup_shares_one_blob(self, keys):
        """Identical payloads under distinct keys share a single blob."""
        with tempfile.TemporaryDirectory() as root:
            store = ShardedStore(root, shards=8)
            payload = {"x": np.arange(100, dtype=np.float64)}
            for ki in sorted(keys):
                store.put("ns", _KEYS[ki], payload)
            blobs = list(store.shards_dir.glob("*/*.npz"))
            assert len(blobs) == 1
            assert store.stats.dedup_hits == len(keys) - 1
            report = store.dedup_report()
            assert report["entries"] == len(keys)
            assert report["unique_blobs"] == 1
            assert report["saved_pct"] > 0


class TestContentHash:
    @settings(max_examples=30, deadline=None)
    @given(values=st.lists(st.integers(-1000, 1000), min_size=1, max_size=32))
    def test_deterministic_and_content_sensitive(self, values):
        a = {"x": np.array(values, dtype=np.int64)}
        b = {"x": np.array(values, dtype=np.int64)}
        assert content_hash(a) == content_hash(b)
        mutated = {"x": np.array(values, dtype=np.int64)}
        mutated["x"][0] += 1
        assert content_hash(a) != content_hash(mutated)

    def test_name_and_dtype_matter(self):
        x = np.arange(8, dtype=np.int64)
        assert content_hash({"x": x}) != content_hash({"y": x})
        assert (content_hash({"x": x})
                != content_hash({"x": x.astype(np.float64)}))


class TestMigration:
    """Flat-layout caches are read through and upgraded in place."""

    def _build_flat(self, root: Path, n: int = 3):
        flat = DiskCache(root, backend="flat")
        payloads = {}
        for i in range(n):
            arrays = {"x": np.arange(10, dtype=np.float64) + i}
            flat.save("attacks", f"cell{i}", arrays, meta={"cell": i})
            payloads[f"cell{i}"] = arrays
        return payloads

    def test_read_through_upgrades_in_place(self, tmp_path):
        payloads = self._build_flat(tmp_path)
        cache = DiskCache(tmp_path)          # sharded default
        arrays = cache.load("attacks", "cell1")
        np.testing.assert_array_equal(arrays["x"], payloads["cell1"]["x"])
        # The flat blob is gone, the sharded entry + blob exist.
        assert not (tmp_path / "attacks" / "cell1.npz").exists()
        assert cache.store.contains("attacks", "cell1")
        assert cache.stats.migrated == 1
        assert cache.stats.hits == 1
        # Meta migrated into the store alongside the blob.
        assert cache.load_meta("attacks", "cell1")["cell"] == 1
        # Second read comes from the sharded layout.
        again = cache.load("attacks", "cell1")
        np.testing.assert_array_equal(again["x"], payloads["cell1"]["x"])
        assert cache.stats.migrated == 1

    def test_migrate_flat_bulk(self, tmp_path):
        payloads = self._build_flat(tmp_path, n=4)
        store = ShardedStore(tmp_path, shards=8)
        assert store.migrate_flat() == 4
        assert store.stats.migrated == 4
        for key, arrays in payloads.items():
            got = store.get("attacks", key)
            np.testing.assert_array_equal(got["x"], arrays["x"])
            assert not (tmp_path / "attacks" / f"{key}.npz").exists()

    def test_unreadable_legacy_discarded(self, tmp_path):
        self._build_flat(tmp_path, n=1)
        (tmp_path / "attacks" / "cell0.npz").write_bytes(b"torn write")
        cache = DiskCache(tmp_path)
        with pytest.raises(KeyError):
            cache.load("attacks", "cell0")
        assert cache.stats.stale_discards == 1
        assert not (tmp_path / "attacks" / "cell0.npz").exists()


class TestQuarantine:
    def test_corrupt_blob_quarantined_with_stats(self, tmp_path):
        store = ShardedStore(tmp_path, shards=8)
        blob = store.put("ns", "k", {"x": np.arange(16)})
        blob.write_bytes(b"\x00corrupt")
        with pytest.raises(KeyError):
            store.get("ns", "k")
        assert store.stats.quarantined == 1
        assert store.stats.stale_discards == 1
        assert store.stats.misses == 1
        quarantined = list(store.quarantine_dir.glob("*.npz"))
        assert [p.name for p in quarantined] == [blob.name]
        assert not blob.exists()
        assert store.entries() == []
        # The key recomputes cleanly afterwards.
        store.put("ns", "k", {"x": np.arange(16)})
        assert sorted(store.get("ns", "k")) == ["x"]

    def test_verify_scrub_resume_skips_clean_shards(self, tmp_path):
        store = ShardedStore(tmp_path, shards=4)
        for i in range(8):
            store.put("ns", f"k{i}", {"x": np.arange(8) + i})
        report = store.verify()
        assert report["checked"] == 8
        assert report["quarantined"] == 0
        state = json.loads(store.scrub_path.read_text())
        assert state["status"] == "complete"
        assert all(s["status"] == "clean" for s in state["shards"].values())
        # Resume skips every already-clean shard.
        resumed = store.verify(resume=True)
        assert resumed["checked"] == 0
        assert resumed["skipped"] == 8

    def test_verify_heals_corruption_and_dangling(self, tmp_path):
        store = ShardedStore(tmp_path, shards=4)
        blobs = [store.put("ns", f"k{i}", {"x": np.arange(8) + i})
                 for i in range(4)]
        blobs[0].write_bytes(b"bad")
        blobs[1].unlink()
        report = store.verify()
        assert report["quarantined"] == 1
        assert report["dangling"] == 1
        # Healed: the two damaged keys are gone, the rest still load.
        assert not store.contains("ns", "k0")
        assert not store.contains("ns", "k1")
        assert sorted(store.get("ns", "k2")) == ["x"]


class TestAtomicWrite:
    def test_returns_bytes_and_publishes_whole(self, tmp_path):
        target = tmp_path / "deep" / "doc.json"
        n = atomic_write(target, lambda fh: fh.write(b'{"ok": 1}'),
                         suffix=".tmp")
        assert n == 9
        assert json.loads(target.read_text()) == {"ok": 1}
        assert not list(tmp_path.rglob("*.tmp"))

    def test_failure_leaves_no_temp(self, tmp_path):
        target = tmp_path / "doc.json"

        def boom(fh):
            raise RuntimeError("disk on fire")

        with pytest.raises(RuntimeError):
            atomic_write(target, boom, suffix=".tmp")
        assert not target.exists()
        assert not list(tmp_path.rglob("*.tmp"))


class TestConfig:
    def test_max_bytes_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError):
            ShardedStore(tmp_path, max_bytes=0)
        with pytest.raises(ValueError):
            DiskCache(tmp_path, max_bytes=-1)

    def test_flat_backend_rejects_max_bytes(self, tmp_path):
        with pytest.raises(ValueError):
            DiskCache(tmp_path, backend="flat", max_bytes=1024)

    def test_unknown_backend_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            DiskCache(tmp_path, backend="mystery")

    def test_stats_reset_covers_new_counters(self):
        stats = CacheStats(hits=2, dedup_hits=3, evictions=4,
                           quarantined=5, migrated=6)
        stats.reset()
        assert stats.as_dict()["dedup_hits"] == 0
        assert stats.evictions == stats.quarantined == stats.migrated == 0


class TestEvictionTelemetry:
    """Evictions surface in the telemetry log and the timings report."""

    def _pressured_store(self, root, *, pin_all=False):
        """Six ~4 KiB puts against a 4 KiB cap: every put evicts."""
        store = ShardedStore(root, shards=4, max_bytes=4096)
        for i in range(6):
            payload = {"x": np.full(512, float(i), dtype=np.float64)}
            if pin_all:
                store.pin("ns", f"k{i}")
            store.put("ns", f"k{i}", payload)
        return store

    def test_evict_emits_events_and_counts_bytes(self, tmp_path):
        from repro.obs import configure_observability, load_events

        log = tmp_path / "telemetry.jsonl"
        configure_observability(log)
        try:
            store = self._pressured_store(tmp_path / "store")
        finally:
            configure_observability(None)
        assert store.stats.evictions > 0
        assert store.stats.bytes_reclaimed > 0
        evicts = [e for e in load_events(log)
                  if e["stage"] == "store/evict"]
        assert evicts
        assert sum(e["evicted"] for e in evicts) == store.stats.evictions
        assert (sum(e["bytes_reclaimed"] for e in evicts)
                == store.stats.bytes_reclaimed)
        assert all(e["duration_s"] >= 0 for e in evicts)

    def test_over_cap_event_when_pins_hold_the_line(self, tmp_path):
        from repro.obs import configure_observability, load_events

        log = tmp_path / "telemetry.jsonl"
        configure_observability(log)
        try:
            store = self._pressured_store(tmp_path / "store", pin_all=True)
        finally:
            configure_observability(None)
        assert store.total_bytes() > 4096      # pins held, cap exceeded
        over = [e for e in load_events(log)
                if e["stage"] == "store/over_cap"]
        assert over
        assert over[-1]["over_bytes"] > 0
        assert over[-1]["pinned"] == 6

    def test_store_summary_folds_into_timings(self, tmp_path):
        from repro.obs import (configure_observability, load_events,
                               render_store_summary, render_timings)

        log = tmp_path / "telemetry.jsonl"
        configure_observability(log)
        try:
            self._pressured_store(tmp_path / "store")
        finally:
            configure_observability(None)
        events = load_events(log)
        line = render_store_summary(events)
        assert line is not None
        assert "reclaimed" in line
        assert line in render_timings(events)

    def test_no_summary_without_evictions(self):
        from repro.obs import render_store_summary

        assert render_store_summary([{"stage": "train/ae"}]) is None

    def test_stats_reset_covers_bytes_reclaimed(self):
        stats = CacheStats(bytes_reclaimed=123)
        stats.reset()
        assert stats.bytes_reclaimed == 0
