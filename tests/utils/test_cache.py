"""Unit tests for stable hashing and the disk cache."""

import os

import numpy as np
import pytest

from repro.utils.cache import DiskCache, stable_hash


class TestStableHash:
    def test_deterministic(self):
        cfg = {"a": 1, "b": [1, 2, 3], "c": {"x": 0.5}}
        assert stable_hash(cfg) == stable_hash(cfg)

    def test_dict_order_invariant(self):
        assert stable_hash({"a": 1, "b": 2}) == stable_hash({"b": 2, "a": 1})

    def test_value_sensitivity(self):
        assert stable_hash({"a": 1}) != stable_hash({"a": 2})

    def test_float_precision_matters(self):
        assert stable_hash(0.1) != stable_hash(0.1000001)

    def test_int_float_distinguished(self):
        assert stable_hash(1) != stable_hash(1.0)

    def test_ndarray_content_hashing(self):
        a = np.arange(10)
        b = np.arange(10)
        c = np.arange(10) + 1
        assert stable_hash(a) == stable_hash(b)
        assert stable_hash(a) != stable_hash(c)

    def test_ndarray_dtype_matters(self):
        a = np.zeros(4, dtype=np.float32)
        b = np.zeros(4, dtype=np.float64)
        assert stable_hash(a) != stable_hash(b)

    def test_nested_structures(self):
        cfg = {"layers": [(3, "relu"), (5, "sigmoid")], "arr": np.ones(3)}
        assert len(stable_hash(cfg)) == 16

    def test_numpy_scalars(self):
        assert stable_hash(np.int64(5)) == stable_hash(5)

    def test_custom_length(self):
        assert len(stable_hash("x", length=8)) == 8


class TestDiskCache:
    def test_save_load_round_trip(self, tmp_path):
        cache = DiskCache(tmp_path)
        arrays = {"x": np.arange(6).reshape(2, 3), "y": np.ones(4)}
        cache.save("ns", "key1", arrays)
        loaded = cache.load("ns", "key1")
        np.testing.assert_array_equal(loaded["x"], arrays["x"])
        np.testing.assert_array_equal(loaded["y"], arrays["y"])

    def test_load_missing_raises_keyerror(self, tmp_path):
        with pytest.raises(KeyError):
            DiskCache(tmp_path).load("ns", "nope")

    def test_contains(self, tmp_path):
        cache = DiskCache(tmp_path)
        assert not cache.contains("ns", "k")
        cache.save("ns", "k", {"a": np.zeros(1)})
        assert cache.contains("ns", "k")

    def test_meta_side_car(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.save("ns", "k", {"a": np.zeros(1)}, meta={"acc": 0.99})
        assert cache.load_meta("ns", "k")["acc"] == 0.99

    def test_meta_missing_raises(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.save("ns", "k", {"a": np.zeros(1)})
        with pytest.raises(KeyError):
            cache.load_meta("ns", "k")

    def test_get_or_compute_computes_once(self, tmp_path):
        cache = DiskCache(tmp_path)
        calls = []

        def compute():
            calls.append(1)
            return {"v": np.full(3, 7.0)}

        first = cache.get_or_compute("ns", "k", compute)
        second = cache.get_or_compute("ns", "k", compute)
        assert len(calls) == 1
        np.testing.assert_array_equal(first["v"], second["v"])

    def test_get_or_compute_type_check(self, tmp_path):
        cache = DiskCache(tmp_path)
        with pytest.raises(TypeError):
            cache.get_or_compute("ns", "k", lambda: [1, 2])

    def test_namespaces_isolated(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.save("a", "k", {"v": np.zeros(1)})
        assert not cache.contains("b", "k")

    def test_clear_namespace(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.save("a", "k1", {"v": np.zeros(1)})
        cache.save("b", "k2", {"v": np.zeros(1)})
        removed = cache.clear("a")
        assert removed >= 1
        assert not cache.contains("a", "k1")
        assert cache.contains("b", "k2")

    def test_clear_missing_namespace(self, tmp_path):
        assert DiskCache(tmp_path).clear("ghost") == 0

    def test_overwrite_is_atomic_replacement(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.save("ns", "k", {"v": np.zeros(2)})
        cache.save("ns", "k", {"v": np.ones(2)})
        np.testing.assert_array_equal(cache.load("ns", "k")["v"], np.ones(2))


class TestCorruptionRecovery:
    """Unreadable entries must surface as misses, not crashes."""

    def _corrupt(self, cache, namespace, key, payload=b"\x00truncated"):
        path = cache._path(namespace, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(payload)

    def test_truncated_npz_raises_keyerror_and_is_removed(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.save("ns", "k", {"v": np.ones(4)})
        self._corrupt(cache, "ns", "k")
        with pytest.raises(KeyError):
            cache.load("ns", "k")
        assert not cache.contains("ns", "k")  # stale file discarded

    def test_empty_file_treated_as_miss(self, tmp_path):
        cache = DiskCache(tmp_path)
        self._corrupt(cache, "ns", "k", payload=b"")
        with pytest.raises(KeyError):
            cache.load("ns", "k")

    def test_get_or_compute_rewrites_corrupt_entry(self, tmp_path):
        cache = DiskCache(tmp_path)
        self._corrupt(cache, "ns", "k")
        arrays = cache.get_or_compute("ns", "k",
                                      lambda: {"v": np.full(2, 3.0)})
        np.testing.assert_array_equal(arrays["v"], np.full(2, 3.0))
        # the rewritten entry is now healthy
        np.testing.assert_array_equal(cache.load("ns", "k")["v"],
                                      np.full(2, 3.0))

    def test_corrupt_meta_treated_as_miss(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.save("ns", "k", {"v": np.zeros(1)}, meta={"a": 1})
        cache._path("ns", "k").with_suffix(".json").write_text("{not json")
        with pytest.raises(KeyError):
            cache.load_meta("ns", "k")

    def test_stats_count_discards(self, tmp_path):
        cache = DiskCache(tmp_path)
        self._corrupt(cache, "ns", "k")
        with pytest.raises(KeyError):
            cache.load("ns", "k")
        assert cache.stats.stale_discards == 1


class TestCacheStats:
    def test_hit_miss_write_accounting(self, tmp_path):
        cache = DiskCache(tmp_path)
        with pytest.raises(KeyError):
            cache.load("ns", "k")
        cache.save("ns", "k", {"v": np.ones(8)})
        cache.load("ns", "k")
        stats = cache.stats
        assert stats.misses == 1
        assert stats.writes == 1
        assert stats.hits == 1
        assert stats.bytes_written > 0
        assert stats.bytes_read > 0
        assert stats.hit_rate == pytest.approx(0.5)

    def test_reset_and_as_dict(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.save("ns", "k", {"v": np.ones(2)})
        cache.load("ns", "k")
        data = cache.stats.as_dict()
        assert data["hits"] == 1 and "hit_rate" in data
        cache.stats.reset()
        assert cache.stats.hits == 0
        assert cache.stats.bytes_read == 0

    def test_str_mentions_counts(self, tmp_path):
        cache = DiskCache(tmp_path)
        assert "hits=0" in str(cache.stats)


class TestConcurrentWriters:
    """The parallel runtime races workers on one cache root."""

    def test_threaded_same_key_stress(self, tmp_path):
        import concurrent.futures

        cache = DiskCache(tmp_path)
        payload = {"v": np.arange(2048, dtype=np.float64)}

        def write(i):
            cache.save("ns", "shared", payload, meta={"writer": i})
            return i

        with concurrent.futures.ThreadPoolExecutor(max_workers=8) as pool:
            done = list(pool.map(write, range(32)))
        assert len(done) == 32
        # whoever won, the published entry must be complete and readable
        np.testing.assert_array_equal(cache.load("ns", "shared")["v"],
                                      payload["v"])
        assert "writer" in cache.load_meta("ns", "shared")
        # no temp droppings left behind anywhere in the cache tree
        leftovers = [p for p in tmp_path.rglob("*") if p.suffix == ".tmp"]
        assert leftovers == []

    def test_threaded_distinct_keys(self, tmp_path):
        import concurrent.futures

        cache = DiskCache(tmp_path)

        def write(i):
            cache.save("ns", f"k{i}", {"v": np.full(64, float(i))})
            return i

        with concurrent.futures.ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(write, range(24)))
        for i in range(24):
            np.testing.assert_array_equal(cache.load("ns", f"k{i}")["v"],
                                          np.full(64, float(i)))

    def test_process_pool_writers(self, tmp_path):
        from repro.runtime.executor import parallel_map

        out = parallel_map(_write_entry, [(str(tmp_path), i)
                                          for i in range(8)], jobs=4)
        cache = DiskCache(tmp_path)
        assert sorted(out) == list(range(8))
        for i in range(8):
            np.testing.assert_array_equal(cache.load("ns", f"p{i}")["v"],
                                          np.full(16, float(i)))


def _write_entry(payload):
    """Module-level so the process pool can pickle it."""
    root, i = payload
    cache = DiskCache(root)
    cache.save("ns", f"p{i}", {"v": np.full(16, float(i))})
    return i


class TestDurability:
    """save/save_json must fsync the data AND the directory entry."""

    def test_atomic_write_fsyncs_directory(self, tmp_path, monkeypatch):
        import repro.utils.cache as cache_mod

        synced = []
        real_fsync = os.fsync

        def spy_fsync(fd):
            synced.append(os.fstat(fd).st_mode)
            return real_fsync(fd)

        monkeypatch.setattr(os, "fsync", spy_fsync)
        DiskCache(tmp_path).save_json("checkpoints", "m", {"done": [1, 2]})
        import stat

        modes = [stat.S_ISDIR(m) for m in synced]
        assert True in modes, "directory entry was never fsynced"
        assert False in modes, "file contents were never fsynced"

    def test_save_json_leaves_no_temp_files(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.save_json("checkpoints", "m", {"k": "v"})
        cache.save_json("checkpoints", "m", {"k": "v2"})  # overwrite
        leftovers = [p for p in (tmp_path / "checkpoints").iterdir()
                     if ".tmp" in p.name]
        assert leftovers == []
        assert cache.load_json("checkpoints", "m") == {"k": "v2"}

    def test_dir_fsync_failure_is_nonfatal(self, tmp_path, monkeypatch):
        """A filesystem that refuses directory fsync must not break saves."""
        import stat

        real_fsync = os.fsync

        def picky_fsync(fd):
            if stat.S_ISDIR(os.fstat(fd).st_mode):
                raise OSError("EINVAL")
            return real_fsync(fd)

        monkeypatch.setattr(os, "fsync", picky_fsync)
        cache = DiskCache(tmp_path)
        cache.save_json("ns", "k", {"ok": 1})
        assert cache.load_json("ns", "k") == {"ok": 1}
