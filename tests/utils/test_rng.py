"""Unit tests for deterministic RNG helpers."""

import numpy as np
import pytest

from repro.utils.rng import SeedSequence, rng_from_seed, spawn_seeds


class TestSeedSequence:
    def test_same_root_gives_same_stream(self):
        a = [SeedSequence(42).next() for _ in range(3)]
        b = []
        seq = SeedSequence(42)
        for _ in range(3):
            b.append(seq.next())
        # Note: a re-creates the sequence each time, so compare properly:
        seq_a, seq_b = SeedSequence(42), SeedSequence(42)
        assert [seq_a.next() for _ in range(5)] == [seq_b.next() for _ in range(5)]

    def test_stream_values_distinct(self):
        seq = SeedSequence(0)
        seeds = [seq.next() for _ in range(50)]
        assert len(set(seeds)) == 50

    def test_different_roots_differ(self):
        assert SeedSequence(1).next() != SeedSequence(2).next()

    def test_next_rng_returns_generator(self):
        assert isinstance(SeedSequence(3).next_rng(), np.random.Generator)

    def test_non_int_root_rejected(self):
        with pytest.raises(TypeError):
            SeedSequence("seed")


class TestRngFromSeed:
    def test_int_is_deterministic(self):
        a = rng_from_seed(7).random(5)
        b = rng_from_seed(7).random(5)
        np.testing.assert_allclose(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert rng_from_seed(gen) is gen

    def test_none_gives_generator(self):
        assert isinstance(rng_from_seed(None), np.random.Generator)

    def test_numpy_integer_accepted(self):
        assert isinstance(rng_from_seed(np.int64(3)), np.random.Generator)

    def test_invalid_type_rejected(self):
        with pytest.raises(TypeError):
            rng_from_seed(3.5)


class TestSpawnSeeds:
    def test_count_and_determinism(self):
        a = spawn_seeds(9, 10)
        b = spawn_seeds(9, 10)
        assert a == b
        assert len(a) == 10

    def test_independence_across_roots(self):
        assert spawn_seeds(1, 5) != spawn_seeds(2, 5)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_seeds(0, -1)

    def test_zero_count(self):
        assert spawn_seeds(0, 0) == []
