"""Unit tests for experiment profiles and the registry wiring (no compute)."""

import os

import pytest

from repro.experiments import (
    EXPERIMENT_IDS,
    PAPER,
    PROFILES,
    QUICK,
    SMOKE,
    current_profile,
    describe_experiments,
)
from repro.experiments.config import PAPER_BETAS


class TestProfiles:
    def test_three_profiles_registered(self):
        assert set(PROFILES) == {"smoke", "quick", "paper"}

    def test_paper_profile_matches_paper_settings(self):
        assert PAPER.digits_attack == 1000
        assert PAPER.max_iterations == 1000
        assert PAPER.binary_search_steps == 9
        assert PAPER.initial_const == pytest.approx(1e-3)
        assert PAPER.cw_lr == pytest.approx(1e-2)
        assert PAPER.wide_width == 256
        assert PAPER.betas == PAPER_BETAS

    def test_paper_kappa_grids(self):
        assert PAPER.digits_kappas[0] == 0.0
        assert PAPER.digits_kappas[-1] == 40.0
        assert PAPER.digits_kappas[1] - PAPER.digits_kappas[0] == 5.0
        assert PAPER.objects_kappas[-1] == 100.0

    def test_paper_fp_rates(self):
        # MagNet's published false-positive budgets.
        assert PAPER.fpr_total_digits == pytest.approx(0.001)
        assert PAPER.fpr_total_objects == pytest.approx(0.005)

    def test_quick_profile_is_smaller(self):
        assert QUICK.digits_attack < PAPER.digits_attack
        assert QUICK.max_iterations < PAPER.max_iterations
        assert len(QUICK.digits_kappas) <= len(PAPER.digits_kappas)

    def test_accessors_dispatch_by_dataset(self):
        assert SMOKE.sizes("digits") == SMOKE.digits_sizes
        assert SMOKE.sizes("objects") == SMOKE.objects_sizes
        assert SMOKE.kappas("digits") == SMOKE.digits_kappas
        assert SMOKE.n_attack("objects") == SMOKE.objects_attack
        assert SMOKE.fpr_total("digits") == SMOKE.fpr_total_digits
        assert SMOKE.logit_scale("objects") == SMOKE.logit_scale_objects

    def test_config_round_trip(self):
        cfg = QUICK.config()
        assert cfg["name"] == "quick"
        assert cfg["betas"] == list(PAPER_BETAS) or cfg["betas"] == PAPER_BETAS

    def test_profiles_are_frozen(self):
        with pytest.raises(Exception):
            QUICK.max_iterations = 5

    def test_betas_match_paper_table1(self):
        assert PAPER_BETAS == (1e-3, 1e-2, 5e-2, 1e-1)


class TestCurrentProfile:
    def test_default_is_quick(self, monkeypatch):
        monkeypatch.delenv("REPRO_PROFILE", raising=False)
        assert current_profile().name == "quick"

    def test_env_selection(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "smoke")
        assert current_profile().name == "smoke"

    def test_case_insensitive(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "PAPER")
        assert current_profile().name == "paper"

    def test_unknown_profile_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "warp")
        with pytest.raises(KeyError):
            current_profile()


class TestRegistryWiring:
    def test_all_20_experiments(self):
        assert len(EXPERIMENT_IDS) == 20

    def test_descriptions_complete(self):
        desc = describe_experiments()
        assert set(desc) == set(EXPERIMENT_IDS)

    def test_context_memoization(self, test_cache):
        from repro.experiments import clear_contexts, get_context

        clear_contexts()
        a = get_context("digits", profile=SMOKE, cache=test_cache)
        b = get_context("digits", profile=SMOKE, cache=test_cache)
        assert a is b
        c = get_context("digits", profile=SMOKE, cache=test_cache, seed=1)
        assert c is not a
        clear_contexts()
        d = get_context("digits", profile=SMOKE, cache=test_cache)
        assert d is not a
