"""Unit tests for the sweep helpers, using stub contexts (no training)."""

import numpy as np
import pytest

from repro.experiments import sweeps
from repro.attacks.base import AttackResult


class _StubMagnet:
    """MagNet stand-in with a deterministic accuracy schedule."""

    def __init__(self, acc_by_name):
        self.acc_by_name = acc_by_name
        self.name = "stub"

    def defense_accuracy(self, x_adv, y_true):
        return self.acc_by_name[x_adv.tobytes()]

    def attack_success_rate(self, x_adv, y_true):
        return 1.0 - self.defense_accuracy(x_adv, y_true)


def _result(tag: float, n: int = 4) -> AttackResult:
    x = np.full((n, 1, 2, 2), tag, dtype=np.float32)
    return AttackResult(
        x_adv=x, success=np.ones(n, dtype=bool),
        y_true=np.zeros(n, dtype=np.int64), y_adv=np.ones(n, dtype=np.int64),
        l0=np.full(n, 2.0), l1=np.full(n, tag * 10),
        l2=np.full(n, tag * 5), linf=np.full(n, tag),
        name=f"stub({tag})")


class _StubContext:
    """ExperimentContext stand-in serving canned attack results."""

    dataset = "digits"

    def __init__(self):
        self._store = {}

    def add_cw(self, kappa, tag):
        self._store[("cw", kappa)] = _result(tag)

    def add_ead(self, beta, kappa, tag_en, tag_l1):
        self._store[("ead", beta, kappa)] = {
            "en": _result(tag_en), "l1": _result(tag_l1)}

    def cw(self, kappa):
        return self._store[("cw", kappa)]

    def ead(self, beta, kappa):
        return self._store[("ead", beta, kappa)]

    def attack_seeds(self):
        return np.zeros((4, 1, 2, 2), dtype=np.float32), np.zeros(4, np.int64)


@pytest.fixture
def stub():
    ctx = _StubContext()
    kappas = [0.0, 10.0]
    acc = {}
    for i, k in enumerate(kappas):
        ctx.add_cw(k, tag=0.1 + i * 0.01)
        ctx.add_ead(1e-1, k, tag_en=0.3 + i * 0.01, tag_l1=0.5 + i * 0.01)
    # accuracy schedule keyed by x_adv content
    def reg(tag, value):
        acc[np.full((4, 1, 2, 2), tag, dtype=np.float32).tobytes()] = value
    reg(0.10, 0.95); reg(0.11, 0.90)      # CW: high accuracy
    reg(0.30, 0.40); reg(0.31, 0.20)      # EAD-EN: low accuracy
    reg(0.50, 0.50); reg(0.51, 0.30)      # EAD-L1
    return ctx, _StubMagnet(acc), kappas


class TestAttackResultDispatch:
    def test_cw_and_ead(self, stub):
        ctx, _, kappas = stub
        assert sweeps.attack_result(ctx, "cw", 0.0).name == "stub(0.1)"
        assert sweeps.attack_result(ctx, "ead", 0.0, rule="l1").name == "stub(0.5)"

    def test_unknown_family(self, stub):
        ctx, _, _ = stub
        with pytest.raises(KeyError):
            sweeps.attack_result(ctx, "pgd", 0.0)


class TestAccuracyCurves:
    def test_curve_names_and_values(self, stub):
        ctx, magnet, kappas = stub
        curves = sweeps.accuracy_curves(ctx, magnet, kappas, beta=1e-1)
        assert curves["C&W L2 attack"] == [0.95, 0.90]
        assert curves["EAD-EN beta=0.1"] == [0.40, 0.20]
        assert curves["EAD-L1 beta=0.1"] == [0.50, 0.30]


class TestBestASR:
    def test_max_over_kappas(self, stub):
        ctx, magnet, kappas = stub
        asr = sweeps.best_asr(ctx, magnet, kappas, beta=1e-1, rule="en")
        assert asr == pytest.approx(0.80)  # 1 - 0.20

    def test_cw_best_tracks_kappa(self, stub):
        ctx, magnet, kappas = stub
        best = sweeps.cw_best(ctx, magnet, kappas)
        assert best["kappa"] == 10.0
        assert best["asr"] == pytest.approx(0.10)
        assert best["l1"] == pytest.approx(1.1)

    def test_ead_best(self, stub):
        ctx, magnet, kappas = stub
        best = sweeps.ead_best(ctx, magnet, kappas, beta=1e-1, rule="l1")
        assert best["kappa"] == 10.0
        assert best["asr"] == pytest.approx(0.70)


class TestSchemeLabels:
    def test_all_schemes_labelled(self):
        assert set(sweeps.SCHEMES) == set(
            k for k in ("no_defense", "detector_only", "reformer_only",
                        "full"))
        assert len(sweeps.SCHEME_LABELS) == 4
