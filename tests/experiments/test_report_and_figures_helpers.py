"""Tests for report containers and pure figure helpers."""

import numpy as np
import pytest

from repro.experiments.figures import _ascii_image, _panels_text
from repro.experiments.report import ExperimentReport


class TestExperimentReport:
    def test_str_includes_id_and_title(self):
        report = ExperimentReport("fig2", "curves", "body text", {"a": 1})
        text = str(report)
        assert "fig2" in text
        assert "curves" in text
        assert "body text" in text

    def test_data_defaults_empty(self):
        report = ExperimentReport("x", "y", "z")
        assert report.data == {}


class TestAsciiImage:
    def test_dimensions(self):
        img = np.zeros((1, 5, 7), dtype=np.float32)
        rows = _ascii_image(img)
        assert len(rows) == 5
        assert all(len(r) == 7 for r in rows)

    def test_black_is_space_white_is_dense(self):
        img = np.zeros((1, 1, 2), dtype=np.float32)
        img[0, 0, 1] = 1.0
        row = _ascii_image(img)[0]
        assert row[0] == " "
        assert row[1] == "@"

    def test_multichannel_averaged(self):
        img = np.zeros((3, 1, 1), dtype=np.float32)
        img[0] = 1.0  # mean = 1/3
        row = _ascii_image(img)[0]
        assert row != " " and row != "@"

    def test_values_above_one_clamped(self):
        img = np.full((1, 1, 1), 1.2, dtype=np.float32)
        assert _ascii_image(img)[0] == "@"


class TestPanelsText:
    def test_joined_with_blank_lines(self):
        out = _panels_text(["a", "b"])
        assert out == "a\n\nb"
