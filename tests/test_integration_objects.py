"""Integration tests for the objects (CIFAR-10 stand-in) pipeline.

Mirrors the digits integration suite at smoke scale: the objects dataset
is the harder task, so these tests pin the *relative* properties the
paper's CIFAR experiments rely on (lower clean accuracy, JSD detectors
present in the default variant, working attack/defense plumbing).
"""

import numpy as np
import pytest

from repro.defenses import JSDDetector, ReconstructionDetector
from repro.experiments import SMOKE, ExperimentContext


@pytest.fixture(scope="session")
def obj_ctx(test_cache):
    return ExperimentContext("objects", profile=SMOKE, cache=test_cache,
                             seed=3)


class TestObjectsPipeline:
    def test_classifier_reasonable_but_below_digits(self, obj_ctx):
        from repro.nn import accuracy

        acc = accuracy(obj_ctx.classifier, obj_ctx.splits.test.x,
                       obj_ctx.splits.test.y)
        # Harder task: clearly above chance, typically below digits' ~99%.
        assert 0.55 < acc <= 1.0

    def test_default_variant_has_jsd_detectors(self, obj_ctx):
        magnet = obj_ctx.magnet("default")
        kinds = [type(d) for d in magnet.detectors]
        assert kinds.count(ReconstructionDetector) == 2
        assert kinds.count(JSDDetector) == 2

    def test_cifar_ae_shared_between_detectors_and_reformer(self, obj_ctx):
        magnet = obj_ctx.magnet("default")
        ae = magnet.reformer.autoencoder
        assert all(d.autoencoder is ae for d in magnet.detectors)

    def test_attack_seeds_are_rgb(self, obj_ctx):
        x0, y0 = obj_ctx.attack_seeds()
        assert x0.shape[1:] == (3, 32, 32)
        assert len(y0) == SMOKE.n_attack("objects")

    def test_cw_attack_works_on_objects(self, obj_ctx):
        result = obj_ctx.cw(0.0)
        assert result.success_rate > 0.6
        assert result.x_adv.min() >= 0.0 and result.x_adv.max() <= 1.0

    def test_ead_attack_works_on_objects(self, obj_ctx):
        result = obj_ctx.ead(1e-1, 0.0)["en"]
        assert result.success_rate > 0.6

    def test_ead_sparser_than_cw_on_objects(self, obj_ctx):
        cw = obj_ctx.cw(0.0)
        ead = obj_ctx.ead(1e-1, 0.0)["en"]
        both = cw.success & ead.success
        if both.sum() >= 3:
            assert ead.l0[both].mean() < cw.l0[both].mean()

    def test_defense_evaluation_runs(self, obj_ctx):
        magnet = obj_ctx.magnet("default")
        _, y0 = obj_ctx.attack_seeds()
        result = obj_ctx.cw(0.0)
        acc = magnet.defense_accuracy(result.x_adv, y0)
        assert 0.0 <= acc <= 1.0

    def test_wide_variant_builds(self, obj_ctx):
        magnet = obj_ctx.magnet("wide")
        wide_params = sum(p.size for p in
                          magnet.reformer.autoencoder.parameters())
        thin_params = sum(
            p.size for p in
            obj_ctx.magnet("default").reformer.autoencoder.parameters())
        assert wide_params > thin_params
