"""Tests for the repository's generator scripts (docstring-driven docs)."""

import importlib.util
import pathlib

import pytest


def _load(script_name: str):
    path = pathlib.Path(__file__).resolve().parents[1] / "scripts" / script_name
    spec = importlib.util.spec_from_file_location(script_name[:-3], path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestApiDocsGenerator:
    def test_first_paragraph_extraction(self):
        gen = _load("generate_api_docs.py")
        doc = "Line one\ncontinues here.\n\nSecond paragraph."
        assert gen.first_paragraph(doc) == "Line one continues here."

    def test_first_paragraph_empty(self):
        gen = _load("generate_api_docs.py")
        assert gen.first_paragraph("") == "(undocumented)"

    def test_describe_symbol_function(self):
        gen = _load("generate_api_docs.py")

        def sample(a, b=2):
            """Does a thing."""

        line = gen.describe_symbol("sample", sample)
        assert "`sample(a, b=2)`" in line
        assert "Does a thing." in line

    def test_describe_symbol_constant(self):
        gen = _load("generate_api_docs.py")
        line = gen.describe_symbol("X", 42)
        assert "constant" in line

    def test_generates_file_with_all_packages(self, tmp_path):
        gen = _load("generate_api_docs.py")
        out = tmp_path / "API.md"
        gen.main(str(out))
        text = out.read_text()
        for pkg in gen.PACKAGES:
            assert f"## `{pkg}`" in text
        # Key public symbols are present.
        for symbol in ("EAD(", "CarliniWagnerL2(", "MagNet(",
                       "build_magnet(", "run_experiment("):
            assert symbol in text


class TestExperimentsMdGenerator:
    def test_paper_reference_covers_all_experiments(self):
        gen = _load("generate_experiments_md.py")
        assert set(gen.ORDER) == set(gen.PAPER.keys())
        assert len(gen.ORDER) == 20
