"""Tests for the common-corruption utilities."""

import hashlib

import numpy as np
import pytest

from repro.datasets.corruptions import (
    CORRUPTIONS,
    brightness,
    contrast,
    corrupt,
    gaussian_blur,
    gaussian_noise,
    occlusion,
    pixelate,
    robustness_curve,
)
from repro.runtime.executor import parallel_map


@pytest.fixture
def images(rng):
    return rng.random((4, 1, 28, 28)).astype(np.float32)


class TestIndividualCorruptions:
    def test_all_preserve_shape_and_box(self, images, rng):
        for name, fn in CORRUPTIONS.items():
            out = fn(images, 3, np.random.default_rng(0))
            assert out.shape == images.shape, name
            assert out.min() >= -1e-6 and out.max() <= 1 + 1e-6, name

    def test_noise_severity_monotone(self, images):
        rng0 = np.random.default_rng(0)
        low = gaussian_noise(images, 1, np.random.default_rng(0))
        high = gaussian_noise(images, 5, np.random.default_rng(0))
        assert (np.abs(high - images).mean()
                > np.abs(low - images).mean())

    def test_blur_reduces_variance(self, images):
        out = gaussian_blur(images, 5, np.random.default_rng(0))
        assert out.std() < images.std()

    def test_contrast_compresses_toward_mean(self, images):
        out = contrast(images, 5, np.random.default_rng(0))
        assert out.std() < images.std()
        np.testing.assert_allclose(out.mean(axis=(2, 3)),
                                   images.mean(axis=(2, 3)), atol=0.05)

    def test_brightness_shifts_mean(self, images):
        out = brightness(images, 5, np.random.default_rng(0))
        per_image = np.abs(out.mean(axis=(1, 2, 3))
                           - images.mean(axis=(1, 2, 3)))
        assert (per_image > 0.05).all()

    def test_pixelate_blocks_constant(self, images):
        out = pixelate(images, 5, np.random.default_rng(0))
        # 4x4 blocks are constant
        blocks = out.reshape(4, 1, 7, 4, 7, 4)
        assert np.abs(blocks - blocks.mean(axis=(3, 5),
                                           keepdims=True)).max() < 1e-6

    def test_occlusion_zeroes_patch(self, rng):
        x = np.ones((2, 1, 28, 28), dtype=np.float32)
        out = occlusion(x, 4, np.random.default_rng(0))
        assert (out == 0).any(axis=(1, 2, 3)).all()

    def test_severity_validation(self, images):
        with pytest.raises(ValueError):
            gaussian_noise(images, 0, np.random.default_rng(0))
        with pytest.raises(ValueError):
            gaussian_noise(images, 6, np.random.default_rng(0))

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            gaussian_noise(np.zeros((2, 28, 28)), 1, np.random.default_rng(0))


class TestCorruptDispatch:
    def test_deterministic_given_seed(self, images):
        a = corrupt(images, "gaussian_noise", 3, seed=5)
        b = corrupt(images, "gaussian_noise", 3, seed=5)
        np.testing.assert_allclose(a, b)

    def test_unknown_corruption(self, images):
        with pytest.raises(KeyError):
            corrupt(images, "fog", 1)


def _corruption_digest(task):
    """Worker body: corrupt a deterministic batch, return its SHA-256.

    The batch is rebuilt inside the worker from a fixed generator seed so
    the digest depends only on the corruption's own sampling, not on any
    state inherited from the parent process.
    """
    name, severity, seed = task
    x = np.random.default_rng(99).random((4, 1, 28, 28)).astype(np.float32)
    return hashlib.sha256(corrupt(x, name, severity, seed=seed)
                          .tobytes()).hexdigest()


class TestCrossProcessDeterminism:
    def test_bitwise_identical_across_processes(self):
        """Every corruption is bitwise-reproducible from its seed even
        when computed in a fresh worker process — the property the
        scenario sweep's resumable corruption rows rely on."""
        tasks = [(name, severity, 5)
                 for name in sorted(CORRUPTIONS) for severity in (1, 3)]
        in_process = [_corruption_digest(t) for t in tasks]
        cross_process = parallel_map(_corruption_digest, tasks, jobs=2)
        assert cross_process == in_process

    def test_seed_changes_output(self, images):
        a = corrupt(images, "gaussian_noise", 3, seed=1)
        b = corrupt(images, "gaussian_noise", 3, seed=2)
        assert not np.array_equal(a, b)


class TestRobustnessCurve:
    def test_accuracy_degrades_with_severity(self, tiny_classifier,
                                             tiny_splits):
        x = tiny_splits.test.x[:200]
        y = tiny_splits.test.y[:200]
        curve = robustness_curve(tiny_classifier, x, y, "gaussian_noise",
                                 severities=(1, 5))
        assert set(curve) == {1, 5}
        assert curve[5] <= curve[1] + 0.05
        assert 0.0 <= curve[5] <= 1.0
