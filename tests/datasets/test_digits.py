"""Unit tests for the SyntheticDigits (MNIST stand-in) generator."""

import numpy as np
import pytest

from repro.datasets import digits as D
from repro.datasets import load_digit_splits


class TestSkeletons:
    def test_all_ten_digits_defined(self):
        assert sorted(D.DIGIT_SEGMENTS) == list(range(10))

    def test_skeletons_are_distinct(self):
        segs = set(D.DIGIT_SEGMENTS.values())
        assert len(segs) == 10

    def test_skeleton_strokes_within_unit_box(self):
        for d in range(10):
            for stroke in D.digit_skeleton(d):
                for x, y in stroke:
                    assert 0.0 <= x <= 1.0 and 0.0 <= y <= 1.0

    def test_invalid_digit_rejected(self):
        with pytest.raises(ValueError):
            D.digit_skeleton(10)

    def test_eight_has_all_segments(self):
        assert set(D.DIGIT_SEGMENTS[8]) == set("ABCDEFG")


class TestRenderDigit:
    def test_output_shape_and_range(self, rng):
        img = D.render_digit(3, rng)
        assert img.shape == (1, 28, 28)
        assert img.dtype == np.float32
        assert 0.0 <= img.min() and img.max() <= 1.0

    def test_clean_rendering_deterministic(self, rng):
        a = D.render_digit(5, np.random.default_rng(0), clean=True)
        b = D.render_digit(5, np.random.default_rng(99), clean=True)
        np.testing.assert_allclose(a, b)

    def test_noisy_renderings_differ(self):
        rng = np.random.default_rng(0)
        a = D.render_digit(5, rng)
        b = D.render_digit(5, rng)
        assert np.abs(a - b).max() > 0.05

    def test_ink_present(self, rng):
        img = D.render_digit(8, rng)
        assert img.max() > 0.9  # strokes saturate
        assert img.mean() < 0.5  # mostly background

    def test_different_digits_visually_distinct(self):
        one = D.render_digit(1, np.random.default_rng(0), clean=True)
        eight = D.render_digit(8, np.random.default_rng(0), clean=True)
        assert np.abs(one - eight).mean() > 0.05

    def test_custom_size(self, rng):
        img = D.render_digit(2, rng, size=14)
        assert img.shape == (1, 14, 14)


class TestGenerateDigits:
    def test_class_balance(self):
        ds = D.generate_digits(100, seed=1)
        counts = np.bincount(ds.y, minlength=10)
        np.testing.assert_array_equal(counts, np.full(10, 10))

    def test_deterministic_given_seed(self):
        a = D.generate_digits(20, seed=5)
        b = D.generate_digits(20, seed=5)
        np.testing.assert_allclose(a.x, b.x)
        np.testing.assert_array_equal(a.y, b.y)

    def test_seed_changes_content(self):
        a = D.generate_digits(20, seed=1)
        b = D.generate_digits(20, seed=2)
        assert np.abs(a.x - b.x).max() > 0.1

    def test_invalid_count_rejected(self):
        with pytest.raises(ValueError):
            D.generate_digits(0)


class TestSplits:
    def test_sizes(self):
        splits = load_digit_splits(n_train=50, n_val=20, n_test=30, seed=0)
        assert len(splits.train) == 50
        assert len(splits.val) == 20
        assert len(splits.test) == 30

    def test_splits_disjoint_content(self):
        splits = load_digit_splits(n_train=30, n_val=30, n_test=30, seed=0)
        # Independent streams: train and test images should not coincide.
        assert np.abs(splits.train.x[:10] - splits.test.x[:10]).max() > 0.05

    def test_seed_isolation(self):
        a = load_digit_splits(n_train=10, n_val=10, n_test=10, seed=0)
        b = load_digit_splits(n_train=10, n_val=10, n_test=10, seed=1)
        assert np.abs(a.train.x - b.train.x).max() > 0.05
