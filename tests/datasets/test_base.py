"""Unit tests for dataset containers and split helpers."""

import numpy as np
import pytest

from repro.datasets.base import DataSplits, Dataset, stratified_indices


def _dataset(n=20, c=1, h=4, w=4, classes=4, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.random((n, c, h, w)).astype(np.float32)
    y = np.arange(n) % classes
    return Dataset(x, y, name="toy")


class TestDataset:
    def test_basic_properties(self):
        ds = _dataset()
        assert len(ds) == 20
        assert ds.image_shape == (1, 4, 4)
        assert ds.num_classes == 4

    def test_dtype_coercion(self):
        ds = Dataset(np.zeros((2, 1, 2, 2), dtype=np.float64),
                     np.array([0, 1], dtype=np.int32))
        assert ds.x.dtype == np.float32
        assert ds.y.dtype == np.int64

    def test_non_nchw_rejected(self):
        with pytest.raises(ValueError):
            Dataset(np.zeros((2, 4, 4)), np.zeros(2))

    def test_label_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Dataset(np.zeros((2, 1, 4, 4)), np.zeros(3))

    def test_pixel_range_validated(self):
        with pytest.raises(ValueError):
            Dataset(np.full((1, 1, 2, 2), 2.0), np.zeros(1))
        with pytest.raises(ValueError):
            Dataset(np.full((1, 1, 2, 2), -0.5), np.zeros(1))

    def test_subset(self):
        ds = _dataset()
        sub = ds.subset(np.array([0, 5, 7]))
        assert len(sub) == 3
        np.testing.assert_array_equal(sub.y, ds.y[[0, 5, 7]])

    def test_take(self):
        ds = _dataset()
        assert len(ds.take(5)) == 5
        assert len(ds.take(100)) == 20

    def test_shuffled_preserves_pairs(self):
        ds = _dataset()
        # Make pixel content encode the label so alignment is checkable.
        ds.x[:, 0, 0, 0] = ds.y / 10.0
        shuffled = ds.shuffled(np.random.default_rng(0))
        np.testing.assert_allclose(shuffled.x[:, 0, 0, 0],
                                   shuffled.y / 10.0, atol=1e-6)


class TestDataSplits:
    def test_summary_and_shapes(self):
        splits = DataSplits(train=_dataset(40), val=_dataset(10),
                            test=_dataset(20), name="toy")
        assert splits.image_shape == (1, 4, 4)
        assert splits.num_classes == 4
        assert "40 train" in splits.summary()


class TestStratifiedIndices:
    def test_per_class_counts(self):
        y = np.repeat(np.arange(4), 10)
        idx = stratified_indices(y, 3, np.random.default_rng(0))
        assert len(idx) == 12
        counts = np.bincount(y[idx], minlength=4)
        np.testing.assert_array_equal(counts, [3, 3, 3, 3])

    def test_insufficient_class_raises(self):
        y = np.array([0, 0, 1])
        with pytest.raises(ValueError):
            stratified_indices(y, 2, np.random.default_rng(0))
