"""Unit tests for the procedural rendering primitives."""

import numpy as np
import pytest

from repro.datasets import rendering as R


class TestPixelGrid:
    def test_shapes_and_range(self):
        px, py = R.pixel_grid(8)
        assert px.shape == (8, 8)
        assert 0 < px.min() < px.max() < 1

    def test_pixel_centres(self):
        px, _ = R.pixel_grid(2)
        np.testing.assert_allclose(px[0], [0.25, 0.75])


class TestSegmentDistance:
    def test_point_on_segment_is_zero(self):
        px = np.array([[0.5]])
        py = np.array([[0.5]])
        d = R.segment_distance(px, py, (0.0, 0.5), (1.0, 0.5))
        assert d[0, 0] == pytest.approx(0.0, abs=1e-12)

    def test_perpendicular_distance(self):
        px = np.array([[0.5]])
        py = np.array([[0.8]])
        d = R.segment_distance(px, py, (0.0, 0.5), (1.0, 0.5))
        assert d[0, 0] == pytest.approx(0.3)

    def test_beyond_endpoint_uses_endpoint(self):
        px = np.array([[2.0]])
        py = np.array([[0.5]])
        d = R.segment_distance(px, py, (0.0, 0.5), (1.0, 0.5))
        assert d[0, 0] == pytest.approx(1.0)

    def test_degenerate_segment_is_point_distance(self):
        px = np.array([[1.0]])
        py = np.array([[1.0]])
        d = R.segment_distance(px, py, (0.0, 0.0), (0.0, 0.0))
        assert d[0, 0] == pytest.approx(np.sqrt(2.0))


class TestRenderStrokes:
    def test_output_range_and_dtype(self):
        img = R.render_strokes([[(0.2, 0.5), (0.8, 0.5)]], 16, 0.05)
        assert img.dtype == np.float32
        assert img.min() >= 0.0 and img.max() <= 1.0

    def test_stroke_center_saturated(self):
        img = R.render_strokes([[(0.1, 0.5), (0.9, 0.5)]], 16, 0.08)
        assert img[8, 8] == pytest.approx(1.0)

    def test_far_pixels_empty(self):
        img = R.render_strokes([[(0.5, 0.5), (0.5, 0.5)]], 16, 0.03)
        assert img[0, 0] == 0.0

    def test_thicker_stroke_covers_more(self):
        thin = R.render_strokes([[(0.1, 0.5), (0.9, 0.5)]], 32, 0.02)
        thick = R.render_strokes([[(0.1, 0.5), (0.9, 0.5)]], 32, 0.08)
        assert thick.sum() > thin.sum()


class TestAffinePoints:
    def test_identity(self):
        pts = [(0.3, 0.4), (0.7, 0.6)]
        out = R.affine_points(pts, 0.0, 1.0, 0.0, (0.0, 0.0))
        np.testing.assert_allclose(out, pts)

    def test_shift(self):
        out = R.affine_points([(0.5, 0.5)], 0.0, 1.0, 0.0, (0.1, -0.2))
        np.testing.assert_allclose(out, [(0.6, 0.3)])

    def test_rotation_preserves_center(self):
        out = R.affine_points([(0.5, 0.5)], 1.0, 1.0, 0.0, (0.0, 0.0))
        np.testing.assert_allclose(out, [(0.5, 0.5)], atol=1e-12)

    def test_scale_about_center(self):
        out = R.affine_points([(0.7, 0.5)], 0.0, 2.0, 0.0, (0.0, 0.0))
        np.testing.assert_allclose(out, [(0.9, 0.5)], atol=1e-12)

    def test_rotation_90_degrees(self):
        out = R.affine_points([(0.7, 0.5)], np.pi / 2, 1.0, 0.0, (0.0, 0.0))
        np.testing.assert_allclose(out, [(0.5, 0.7)], atol=1e-9)


class TestNoiseAndBlur:
    def test_blur_preserves_mean(self, rng):
        img = rng.random((8, 8)).astype(np.float32)
        out = R.gaussian_blur(img, 1.0)
        assert out.mean() == pytest.approx(img.mean(), rel=0.05)

    def test_blur_zero_sigma_identity(self, rng):
        img = rng.random((8, 8)).astype(np.float32)
        assert R.gaussian_blur(img, 0.0) is img

    def test_blur_multichannel_keeps_channels_independent(self):
        img = np.zeros((2, 8, 8), dtype=np.float32)
        img[0] = 1.0
        out = R.gaussian_blur(img, 1.0)
        np.testing.assert_allclose(out[1], 0.0, atol=1e-6)

    def test_noise_clipped(self, rng):
        img = np.ones((8, 8), dtype=np.float32)
        out = R.add_pixel_noise(img, 0.5, rng)
        assert out.max() <= 1.0 and out.min() >= 0.0

    def test_noise_zero_level_identity(self, rng):
        img = np.ones((4, 4), dtype=np.float32)
        assert R.add_pixel_noise(img, 0.0, rng) is img


class TestMasksAndTexture:
    def test_soft_mask_inside_outside(self):
        sd = np.array([[-1.0, 0.0, 1.0]])
        mask = R.soft_mask(sd, 0.1)
        assert mask[0, 0] == 1.0
        assert mask[0, 1] == pytest.approx(0.5)
        assert mask[0, 2] == 0.0

    def test_texture_range_and_shape(self, rng):
        tex = R.perlin_like_texture(32, rng)
        assert tex.shape == (32, 32)
        assert tex.min() >= 0.0 and tex.max() <= 1.0

    def test_texture_deterministic(self):
        a = R.perlin_like_texture(16, np.random.default_rng(1))
        b = R.perlin_like_texture(16, np.random.default_rng(1))
        np.testing.assert_allclose(a, b)

    def test_texture_not_constant(self, rng):
        tex = R.perlin_like_texture(32, rng)
        assert tex.std() > 0.05
