"""Unit tests for the SyntheticObjects (CIFAR-10 stand-in) generator."""

import numpy as np
import pytest

from repro.datasets import load_object_splits
from repro.datasets import objects as O


class TestRenderObject:
    def test_output_shape_and_range(self, rng):
        img = O.render_object(0, rng)
        assert img.shape == (3, 32, 32)
        assert img.dtype == np.float32
        assert 0.0 <= img.min() and img.max() <= 1.0

    def test_all_classes_render(self, rng):
        for cls in range(O.NUM_CLASSES):
            img = O.render_object(cls, rng)
            assert np.isfinite(img).all()

    def test_invalid_class_rejected(self, rng):
        with pytest.raises(ValueError):
            O.render_object(10, rng)
        with pytest.raises(ValueError):
            O.render_object(-1, rng)

    def test_images_are_colored(self, rng):
        img = O.render_object(0, rng)
        # channels should differ somewhere (not grayscale)
        assert np.abs(img[0] - img[1]).max() > 0.05

    def test_scene_has_structure(self, rng):
        img = O.render_object(0, rng)
        assert img.std() > 0.05

    def test_custom_size(self, rng):
        img = O.render_object(4, rng, size=16)
        assert img.shape == (3, 16, 16)

    def test_class_names_count(self):
        assert len(O.CLASS_NAMES) == O.NUM_CLASSES


class TestGenerateObjects:
    def test_class_balance(self):
        ds = O.generate_objects(50, seed=3)
        counts = np.bincount(ds.y, minlength=10)
        np.testing.assert_array_equal(counts, np.full(10, 5))

    def test_deterministic(self):
        a = O.generate_objects(10, seed=4)
        b = O.generate_objects(10, seed=4)
        np.testing.assert_allclose(a.x, b.x)

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            O.generate_objects(-1)


class TestObjectSplits:
    def test_sizes_and_shape(self):
        splits = load_object_splits(n_train=20, n_val=10, n_test=10, seed=0)
        assert len(splits.train) == 20
        assert splits.image_shape == (3, 32, 32)


class TestRegistry:
    def test_aliases(self):
        from repro.datasets import canonical_name

        assert canonical_name("mnist") == "digits"
        assert canonical_name("CIFAR10") == "objects"
        assert canonical_name("digits") == "digits"

    def test_unknown_name(self):
        from repro.datasets import canonical_name

        with pytest.raises(KeyError):
            canonical_name("imagenet")

    def test_load_splits_by_alias(self):
        from repro.datasets import load_splits

        splits = load_splits("mnist", n_train=10, n_val=5, n_test=5, seed=0)
        assert splits.image_shape == (1, 28, 28)
