"""Tests for scenario execution: threat models, sweep driver, resume."""

import json

import numpy as np
import pytest

from repro.attacks import logits_of
from repro.defenses import JSDDetector, MagNet, ReconstructionDetector, Reformer
from repro.experiments import SMOKE, ExperimentContext
from repro.scenarios import (
    Scenario,
    ScenarioRegistry,
    execute_scenario,
    load_outcomes,
    run_scenarios,
    scenario_cell_key,
)
from repro.scenarios.runner import (
    CHECKPOINT_NAMESPACE,
    OUTCOME_NAMESPACE,
    ScenarioOutcome,
    build_craft_model,
    missing_cells,
)
from repro.utils.cache import DiskCache

#: Micro attack budget shared by the tiny-fixture cells.
TINY_PARAMS = dict(binary_search_steps=3, max_iterations=60,
                   initial_const=1.0, lr=5e-2)


@pytest.fixture(scope="module")
def magnet(tiny_classifier, tiny_autoencoder, tiny_splits):
    m = MagNet(
        tiny_classifier,
        [ReconstructionDetector(tiny_autoencoder, norm=1),
         JSDDetector(tiny_autoencoder, tiny_classifier, temperature=10.0)],
        Reformer(tiny_autoencoder))
    m.calibrate(tiny_splits.val.x, fpr_total=0.1)
    return m


@pytest.fixture(scope="module")
def seeds(magnet, tiny_splits):
    """Test examples the defended pipeline classifies correctly."""
    reformed = magnet.reformer.reform(tiny_splits.test.x)
    preds = logits_of(magnet.classifier, reformed).argmax(1)
    idx = np.flatnonzero(preds == tiny_splits.test.y)[:8]
    return tiny_splits.test.x[idx], tiny_splits.test.y[idx]


def _run(scenario, magnet, tiny_classifier, seeds, **kwargs):
    x0, y0 = seeds
    kwargs.setdefault("attack_params", TINY_PARAMS)
    return execute_scenario(scenario, classifier=tiny_classifier,
                            magnet=magnet, x0=x0, y0=y0, seed=3, **kwargs)


class TestExecuteScenario:
    def test_outcome_fields_consistent(self, magnet, tiny_classifier, seeds):
        sc = Scenario.create("digits", "default", "oblivious", "ead_l1")
        out = _run(sc, magnet, tiny_classifier, seeds)
        assert out.scenario_id == sc.scenario_id
        assert out.n == len(seeds[1])
        assert 0.0 <= out.attack_success_rate <= 1.0
        assert out.detection_bypass_rate == pytest.approx(
            1.0 - out.detection_rate)
        assert out.mean_l1 >= out.mean_l2 >= 0.0
        assert set(out.breakdown) == {"no_defense", "detector_only",
                                      "reformer_only", "full"}
        # Round-trips through its JSON document form.
        doc = json.loads(json.dumps(out.to_dict()))
        assert ScenarioOutcome.from_dict(doc) == out

    def test_adaptive_attacks_beat_oblivious_baseline(self, magnet,
                                                      tiny_classifier, seeds):
        """The acceptance bar: BPDA and detector-aware strictly beat the
        paper's oblivious threat model against the same MagNet config."""
        rates = {}
        for tm in ("oblivious", "bpda", "detector_aware"):
            sc = Scenario.create("digits", "default", tm, "ead_l1")
            rates[tm] = _run(sc, magnet, tiny_classifier, seeds)
        assert rates["bpda"].attack_success_rate > \
            rates["oblivious"].attack_success_rate
        assert rates["detector_aware"].attack_success_rate > \
            rates["oblivious"].attack_success_rate
        # The detector-aware objective also buys strictly fewer
        # detections than BPDA's reformer-only objective.
        assert rates["detector_aware"].detection_rate <= \
            rates["bpda"].detection_rate

    def test_detector_aware_reports_both_rates(self, magnet, tiny_classifier,
                                               seeds):
        sc = Scenario.create("digits", "default", "detector_aware", "ead_l1")
        out = _run(sc, magnet, tiny_classifier, seeds)
        assert np.isfinite(out.misclassification_rate)
        assert np.isfinite(out.detection_bypass_rate)

    def test_transfer_needs_surrogate(self, magnet, tiny_classifier, seeds):
        sc = Scenario.create("digits", "default", "transfer", "cw")
        with pytest.raises(ValueError):
            _run(sc, magnet, tiny_classifier, seeds)

    def test_transfer_attacks_surrogate(self, magnet, tiny_classifier, seeds):
        sc = Scenario.create("digits", "default", "transfer", "cw")
        # The defended classifier doubles as its own "surrogate" here —
        # the wiring under test, not the transferability result.
        out = _run(sc, magnet, tiny_classifier, seeds,
                   surrogate_classifier=tiny_classifier)
        assert out.threat_model == "transfer"

    def test_corruption_row_deterministic(self, magnet, tiny_classifier,
                                          seeds):
        sc = Scenario.create("digits", "default", "corruption",
                             "gaussian_noise", workload="corruption",
                             severity=3)
        a = _run(sc, magnet, tiny_classifier, seeds, attack_params=None)
        b = _run(sc, magnet, tiny_classifier, seeds, attack_params=None)
        # Document-level comparison (NaN craft rate breaks == on the
        # dataclass itself).
        assert json.dumps(a.to_dict()) == json.dumps(b.to_dict())
        assert np.isnan(a.craft_success_rate)
        assert a.workload == "corruption"

    def test_craft_model_per_threat_model(self, magnet, tiny_classifier):
        from repro.attacks import BPDAReformedModel, ReformedModel

        def build(tm):
            return build_craft_model(
                Scenario.create("digits", "default", tm, "cw"),
                tiny_classifier, magnet,
                surrogate_classifier=tiny_classifier)

        assert build("oblivious") is tiny_classifier
        assert build("transfer") is tiny_classifier
        assert isinstance(build("graybox"), ReformedModel)
        assert isinstance(build("bpda"), BPDAReformedModel)
        assert isinstance(build("detector_aware"), BPDAReformedModel)
        corruption = Scenario.create("digits", "default", "corruption",
                                     "contrast", workload="corruption",
                                     severity=1)
        assert build_craft_model(corruption, tiny_classifier, magnet) is None


# ----------------------------------------------------------------------
# Sweep driver on a real (smoke) context
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def smoke_ctx(tmp_path_factory):
    cache = DiskCache(tmp_path_factory.mktemp("scenario_cache"))
    return ExperimentContext("digits", profile=SMOKE, cache=cache, seed=0)


@pytest.fixture(scope="module")
def mini_cells():
    """A small all-digits registry: three threat models + one corruption."""
    reg = ScenarioRegistry()
    for tm in ("oblivious", "bpda", "detector_aware"):
        reg.add(Scenario.create("digits", "default", tm, "ead_l1"))
    reg.add(Scenario.create("digits", "default", "corruption",
                            "gaussian_noise", workload="corruption",
                            severity=3))
    return reg.expand(root_seed=0)


def _outcome_bytes(ctx, cells):
    """Raw JSON bytes of every cached outcome document."""
    blobs = {}
    for cell in cells:
        key = scenario_cell_key(ctx, cell)
        path = ctx.cache._json_path(OUTCOME_NAMESPACE, key)
        blobs[cell.scenario.scenario_id] = path.read_bytes()
    return blobs


class TestRunScenarios:
    def test_sweep_completes_and_checkpoints(self, smoke_ctx, mini_cells):
        contexts = {"digits": smoke_ctx}
        outcomes = run_scenarios(mini_cells, contexts, jobs=1)
        assert len(outcomes) == len(mini_cells)
        assert missing_cells(mini_cells, contexts) == []
        # The manifest recorded every cell as done.
        manifests = list(
            (smoke_ctx.cache.root / CHECKPOINT_NAMESPACE).glob("*.json"))
        assert manifests
        doc = json.loads(manifests[-1].read_text())
        assert doc["status"] == "complete"
        assert len(doc["done"]) == len(mini_cells)

    def test_adaptive_gain_on_smoke_profile(self, smoke_ctx, mini_cells):
        """The adaptive cells beat oblivious on the smoke context too."""
        outcomes = run_scenarios(mini_cells, {"digits": smoke_ctx}, jobs=1)
        obl = outcomes["digits/default/oblivious/ead_l1"]
        bpda = outcomes["digits/default/bpda/ead_l1"]
        aware = outcomes["digits/default/detector_aware/ead_l1"]
        assert bpda.attack_success_rate > obl.attack_success_rate
        assert aware.attack_success_rate > obl.attack_success_rate

    def test_resume_is_bitwise_reproducible(self, smoke_ctx, mini_cells):
        """Deleting one outcome and resuming recomputes exactly that cell,
        byte-identical to the original document."""
        contexts = {"digits": smoke_ctx}
        run_scenarios(mini_cells, contexts, jobs=1)
        before = _outcome_bytes(smoke_ctx, mini_cells)

        victim = mini_cells[1]
        key = scenario_cell_key(smoke_ctx, victim)
        smoke_ctx.cache._json_path(OUTCOME_NAMESPACE, key).unlink()
        assert [c.scenario.scenario_id
                for c in missing_cells(mini_cells, contexts)] == \
            [victim.scenario.scenario_id]

        outcomes = run_scenarios(mini_cells, contexts, jobs=1, resume=True)
        assert len(outcomes) == len(mini_cells)
        after = _outcome_bytes(smoke_ctx, mini_cells)
        assert after == before

    def test_stolen_work_outcomes_byte_identical(self, smoke_ctx, mini_cells):
        """ISSUE 8: the work-stealing scheduler republishes every outcome
        document byte-identical to the serial and static-chunk paths."""
        contexts = {"digits": smoke_ctx}
        run_scenarios(mini_cells, contexts, jobs=1)
        baseline = _outcome_bytes(smoke_ctx, mini_cells)

        for scheduler in ("static", "work_stealing"):
            for cell in mini_cells:
                key = scenario_cell_key(smoke_ctx, cell)
                smoke_ctx.cache._json_path(OUTCOME_NAMESPACE, key).unlink()
            outcomes = run_scenarios(mini_cells, contexts, jobs=2,
                                     scheduler=scheduler)
            assert len(outcomes) == len(mini_cells)
            assert _outcome_bytes(smoke_ctx, mini_cells) == baseline

    def test_chaotic_stolen_sweep_byte_identical(self, smoke_ctx, mini_cells):
        """FaultPlan chaos under work-stealing must not change a byte of
        any outcome document."""
        from repro.runtime.faults import FaultPlan, RetryPolicy

        contexts = {"digits": smoke_ctx}
        run_scenarios(mini_cells, contexts, jobs=1)
        baseline = _outcome_bytes(smoke_ctx, mini_cells)

        for cell in mini_cells:
            key = scenario_cell_key(smoke_ctx, cell)
            smoke_ctx.cache._json_path(OUTCOME_NAMESPACE, key).unlink()
        outcomes = run_scenarios(
            mini_cells, contexts, jobs=2, scheduler="work_stealing",
            fault_plan=FaultPlan(transients={0: 1, 2: 1}),
            policy=RetryPolicy(retries=3, backoff_s=0.01))
        assert len(outcomes) == len(mini_cells)
        assert _outcome_bytes(smoke_ctx, mini_cells) == baseline

    def test_load_outcomes_skips_missing(self, smoke_ctx, mini_cells):
        contexts = {"digits": smoke_ctx}
        run_scenarios(mini_cells, contexts, jobs=1)
        extra = ScenarioRegistry()
        extra.add(Scenario.create("digits", "default", "graybox", "cw"))
        cells = mini_cells + extra.expand(0)
        loaded = load_outcomes(cells, contexts)
        assert len(loaded) == len(mini_cells)

    def test_missing_context_rejected(self, smoke_ctx):
        reg = ScenarioRegistry()
        reg.add(Scenario.create("objects", "default", "oblivious", "cw"))
        with pytest.raises(KeyError):
            run_scenarios(reg.expand(0), {"digits": smoke_ctx})


class TestReportHelpers:
    def test_tables_and_gain(self, smoke_ctx, mini_cells):
        from repro.scenarios import (
            adaptive_gain,
            outcomes_table,
            render_table,
            success_by_threat_model,
        )

        outcomes = run_scenarios(mini_cells, {"digits": smoke_ctx}, jobs=1)
        rows = outcomes_table(outcomes)
        assert len(rows) == len(outcomes)
        assert rows == sorted(rows, key=lambda r: r["scenario"])

        by_tm = success_by_threat_model(outcomes)
        assert "corruption" not in by_tm  # adversarial cells only
        assert set(by_tm) == {"oblivious", "bpda", "detector_aware"}

        gains = adaptive_gain(outcomes)
        assert {g["threat_model"] for g in gains} == {"bpda",
                                                      "detector_aware"}
        for g in gains:
            assert g["gain"] == pytest.approx(
                g["adaptive_asr"] - g["baseline_asr"])

        text = render_table(rows)
        assert "scenario" in text.splitlines()[0]
        assert len(text.splitlines()) == len(rows) + 2
