"""Tests for the declarative scenario registry."""

import pytest

from repro.datasets.corruptions import CORRUPTIONS
from repro.scenarios import (
    Scenario,
    ScenarioRegistry,
    SweepCell,
    THREAT_MODELS,
    default_registry,
)


class TestScenario:
    def test_id_scheme(self):
        s = Scenario.create("digits", "jsd", "detector_aware", "ead_l1",
                            kappa=1.0)
        assert s.scenario_id == "digits/jsd/detector_aware/ead_l1;kappa=1"
        assert str(s) == s.scenario_id
        assert s.params_dict == {"kappa": 1.0}

    def test_id_without_params(self):
        s = Scenario.create("digits", "default", "oblivious", "cw")
        assert s.scenario_id == "digits/default/oblivious/cw"

    def test_params_sorted_and_hashable(self):
        a = Scenario.create("digits", "default", "bpda", "cw",
                            kappa=1.0, beta=0.1)
        b = Scenario.create("digits", "default", "bpda", "cw",
                            beta=0.1, kappa=1.0)
        assert a == b
        assert len({a, b}) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            Scenario.create("imagenet", "default", "oblivious", "cw")
        with pytest.raises(ValueError):
            Scenario.create("digits", "default", "whitebox", "cw")
        with pytest.raises(ValueError):
            Scenario.create("digits", "default", "oblivious", "pgd")
        # Corruption workload and threat model must agree.
        with pytest.raises(ValueError):
            Scenario.create("digits", "default", "oblivious",
                            "gaussian_noise", workload="corruption")
        with pytest.raises(ValueError):
            Scenario.create("digits", "default", "corruption",
                            "gaussian_noise")
        with pytest.raises(ValueError):
            Scenario.create("digits", "default", "corruption",
                            "not_a_corruption", workload="corruption")


class TestRegistry:
    def _scenario(self, attack="cw", threat="oblivious"):
        return Scenario.create("digits", "default", threat, attack)

    def test_add_and_get(self):
        reg = ScenarioRegistry()
        s = reg.add(self._scenario())
        assert reg.get(s.scenario_id) is s
        with pytest.raises(KeyError):
            reg.get("digits/default/bpda/cw")

    def test_add_idempotent_but_collision_rejected(self):
        reg = ScenarioRegistry()
        reg.add(self._scenario())
        reg.add(self._scenario())  # identical: fine
        assert len(reg) == 1

    def test_generator_lazy_and_materialized_once(self):
        reg = ScenarioRegistry()
        calls = []

        @reg.generator
        def gen():
            calls.append(1)
            yield Scenario.create("digits", "default", "bpda", "cw")

        assert calls == []          # nothing ran yet
        assert len(reg) == 1
        assert len(reg.list()) == 1
        assert calls == [1]         # ran exactly once

    def test_list_sorted_by_id(self):
        reg = ScenarioRegistry()
        reg.add(self._scenario(threat="transfer"))
        reg.add(self._scenario(threat="bpda"))
        ids = [s.scenario_id for s in reg.list()]
        assert ids == sorted(ids)

    def test_select_scalar_and_iterable(self):
        reg = default_registry()
        digits = reg.select(dataset="digits")
        assert digits and all(s.dataset == "digits" for s in digits)
        adaptive = reg.select(threat_model=("bpda", "detector_aware"))
        assert adaptive
        assert {s.threat_model for s in adaptive} == {"bpda",
                                                      "detector_aware"}
        nothing = reg.select(dataset="objects", workload="corruption")
        assert nothing == []

    def test_iteration(self):
        reg = default_registry()
        assert list(reg) == reg.list()


class TestExpansion:
    def test_cells_cover_registry(self):
        reg = default_registry()
        cells = reg.expand(root_seed=0)
        assert len(cells) == len(reg)
        assert all(isinstance(c, SweepCell) for c in cells)

    def test_seed_stability_under_filtering(self):
        """A cell's seed must not depend on which subset is expanded."""
        reg = default_registry()
        full = {c.scenario.scenario_id: c.seed for c in reg.expand(7)}
        subset = reg.expand(7, scenarios=reg.select(threat_model="bpda"))
        assert subset
        for cell in subset:
            assert cell.seed == full[cell.scenario.scenario_id]

    def test_seed_stability_under_registration_order(self):
        a, b = ScenarioRegistry(), ScenarioRegistry()
        s1 = Scenario.create("digits", "default", "bpda", "cw")
        s2 = Scenario.create("digits", "default", "oblivious", "ead_l1")
        a.add(s1), a.add(s2)
        b.add(s2), b.add(s1)
        assert a.expand(3) == b.expand(3)

    def test_root_seed_changes_cell_seeds(self):
        reg = default_registry()
        seeds0 = [c.seed for c in reg.expand(0)]
        seeds1 = [c.seed for c in reg.expand(1)]
        assert seeds0 != seeds1


class TestDefaultRegistry:
    def test_at_least_24_distinct_cells(self):
        reg = default_registry()
        ids = {s.scenario_id for s in reg.list()}
        assert len(ids) >= 24

    def test_covers_every_adversarial_threat_model(self):
        reg = default_registry()
        present = {s.threat_model for s in reg.list()}
        assert present == set(THREAT_MODELS)

    def test_corruption_rows_present(self):
        reg = default_registry()
        rows = reg.select(workload="corruption")
        assert {s.attack for s in rows} == set(CORRUPTIONS)
        severities = {s.params_dict["severity"] for s in rows}
        assert severities == {1, 3, 5}

    def test_fresh_copy_per_call(self):
        a, b = default_registry(), default_registry()
        a.add(Scenario.create("digits", "narrow", "bpda", "cw"))
        assert len(a) == len(b) + 1

    def test_zoo_variants_and_families_enumerated(self):
        reg = default_registry()
        digits = {s.defense_variant for s in reg.select(
            dataset="digits", workload="adversarial")}
        assert digits == {"default", "jsd", "wide", "wide_jsd"}
        objects = {s.defense_variant for s in reg.select(dataset="objects")}
        assert objects == {"default", "wide"}
        families = {s.attack for s in reg.select(workload="adversarial")}
        assert families == {"ead_l1", "ead_en", "cw"}
        # 6 dataset×variant combinations × 5 threat models × 3 families.
        assert len(reg.select(workload="adversarial")) == 90

    def test_axes_summary(self):
        axes = default_registry().axes()
        assert axes["dataset"] == ["digits", "objects"]
        assert "detector_aware" in axes["threat_model"]
        assert "adversarial" in axes["workload"]
