"""Parallel-vs-serial equivalence for a real attack sweep (smoke profile).

The acceptance bar for the runtime: a sweep fanned out across worker
processes must produce *bitwise-identical* artifacts to the serial path,
because workers get the same classifier, the same seeds, and attacks are
deterministic.  Hashes are compared via :func:`stable_hash` over the
cached result arrays.
"""

import pytest

from repro.experiments import SMOKE, ExperimentContext
from repro.experiments import sweeps
from repro.utils.cache import stable_hash

KAPPAS = [0.0]
BETAS = [1e-1]


@pytest.fixture(scope="module")
def smoke_ctx(tmp_path_factory):
    # Hermetic cache for this module; model training happens once here.
    from repro.utils.cache import DiskCache

    cache = DiskCache(tmp_path_factory.mktemp("sweep_cache"))
    return ExperimentContext("digits", profile=SMOKE, cache=cache, seed=0)


def _grid_hashes(ctx):
    """stable_hash of every cached result array dict in the tiny grid."""
    cells = sweeps.attack_grid(ctx, kappas=KAPPAS, betas=BETAS)
    hashes = {}
    for cell in cells:
        for slot, key in sweeps._cell_keys(ctx, cell).items():
            hashes[(tuple(sorted(cell.items())), slot)] = stable_hash(
                ctx.cache.load("attacks", key))
    return hashes


def _clear_attacks(ctx):
    removed = ctx.cache.clear("attacks")
    assert removed > 0


class TestParallelSerialEquivalence:
    def test_same_stable_hash_at_jobs_1_and_jobs_4(self, smoke_ctx):
        ctx = smoke_ctx
        summary = sweeps.precompute_attacks(ctx, kappas=KAPPAS, betas=BETAS,
                                            jobs=1)
        assert summary["computed"] == 2  # one C&W cell + one EAD cell
        serial_hashes = _grid_hashes(ctx)
        assert serial_hashes

        _clear_attacks(ctx)
        summary = sweeps.precompute_attacks(ctx, kappas=KAPPAS, betas=BETAS,
                                            jobs=4)
        assert summary["computed"] == 2
        assert summary["jobs"] == 4
        parallel_hashes = _grid_hashes(ctx)

        assert parallel_hashes == serial_hashes

    def test_precompute_makes_accessors_cache_hits(self, smoke_ctx):
        ctx = smoke_ctx
        sweeps.precompute_attacks(ctx, kappas=KAPPAS, betas=BETAS, jobs=2)
        before = ctx.cache.stats.misses
        result = ctx.cw(KAPPAS[0])
        both = ctx.ead(BETAS[0], KAPPAS[0])
        assert ctx.cache.stats.misses == before  # pure hits
        assert len(result) == SMOKE.digits_attack
        assert set(both) == {"en", "l1"}

    def test_missing_cells_shrinks_to_empty(self, smoke_ctx):
        ctx = smoke_ctx
        cells = sweeps.attack_grid(ctx, kappas=KAPPAS, betas=BETAS)
        assert sweeps.missing_cells(ctx, cells) == []
        summary = sweeps.precompute_attacks(ctx, kappas=KAPPAS, betas=BETAS,
                                            jobs=2)
        assert summary["computed"] == 0
        assert summary["cached"] == 2


class TestAttackGrid:
    def test_grid_shape_defaults_to_profile(self, smoke_ctx):
        cells = sweeps.attack_grid(smoke_ctx)
        n_kappas = len(SMOKE.digits_kappas)
        n_betas = len(SMOKE.betas)
        assert len(cells) == n_kappas + n_betas * n_kappas

    def test_grid_without_cw(self, smoke_ctx):
        cells = sweeps.attack_grid(smoke_ctx, kappas=[0.0, 1.0], betas=[0.1],
                                   include_cw=False)
        assert all(c["attack"] == "ead" for c in cells)
        assert len(cells) == 2
