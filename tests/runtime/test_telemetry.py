"""Unit tests for the JSONL run-telemetry sink and timings report."""

import json
import time

import pytest

from repro.runtime.telemetry import (
    TELEMETRY_ENV,
    RunTelemetry,
    aggregate_events,
    configure_telemetry,
    load_events,
    render_timings,
    telemetry,
)


@pytest.fixture(autouse=True)
def _isolated_telemetry(monkeypatch):
    """Keep the process-wide sink disabled outside each test's control."""
    monkeypatch.delenv(TELEMETRY_ENV, raising=False)
    yield
    configure_telemetry(None)


class TestRunTelemetry:
    def test_disabled_without_path(self):
        sink = RunTelemetry(None)
        assert not sink.enabled
        sink.emit("stage/a", duration_s=1.0)  # must be a silent no-op

    def test_emit_appends_json_lines(self, tmp_path):
        sink = RunTelemetry(tmp_path / "t.jsonl")
        sink.emit("train/classifier", duration_s=1.5, cache="miss", batch=64)
        sink.emit("attack/ead", duration_s=0.25, kappa=10.0)
        lines = (tmp_path / "t.jsonl").read_text().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["stage"] == "train/classifier"
        assert first["duration_s"] == 1.5
        assert first["cache"] == "miss"
        assert first["batch"] == 64
        assert isinstance(first["worker"], int)

    def test_none_fields_dropped(self, tmp_path):
        sink = RunTelemetry(tmp_path / "t.jsonl")
        sink.emit("s", cache=None, batch=3)
        event = json.loads((tmp_path / "t.jsonl").read_text())
        assert "cache" not in event
        assert event["batch"] == 3

    def test_stage_times_the_block(self, tmp_path):
        sink = RunTelemetry(tmp_path / "t.jsonl")
        with sink.stage("sleepy", batch=1) as evt:
            time.sleep(0.01)
            evt["cache"] = "hit"
        event = json.loads((tmp_path / "t.jsonl").read_text())
        assert event["stage"] == "sleepy"
        assert event["duration_s"] >= 0.01
        assert event["cache"] == "hit"

    def test_stage_emits_even_on_exception(self, tmp_path):
        sink = RunTelemetry(tmp_path / "t.jsonl")
        with pytest.raises(RuntimeError):
            with sink.stage("failing"):
                raise RuntimeError("boom")
        assert json.loads((tmp_path / "t.jsonl").read_text())["stage"] == "failing"

    def test_disabled_stage_yields_dict(self):
        sink = RunTelemetry(None)
        with sink.stage("s") as evt:
            evt["cache"] = "hit"  # writable even when disabled


class TestGlobalSink:
    def test_disabled_by_default(self):
        assert not telemetry().enabled

    def test_configure_enables_and_exports_env(self, tmp_path, monkeypatch):
        path = tmp_path / "run.jsonl"
        sink = configure_telemetry(path)
        assert sink.enabled
        assert telemetry() is sink
        import os

        assert os.environ[TELEMETRY_ENV] == str(path)

    def test_env_change_is_picked_up(self, tmp_path, monkeypatch):
        monkeypatch.setenv(TELEMETRY_ENV, str(tmp_path / "a.jsonl"))
        assert telemetry().path.name == "a.jsonl"
        monkeypatch.setenv(TELEMETRY_ENV, str(tmp_path / "b.jsonl"))
        assert telemetry().path.name == "b.jsonl"

    def test_configure_none_disables(self, tmp_path):
        configure_telemetry(tmp_path / "t.jsonl")
        configure_telemetry(None)
        assert not telemetry().enabled


class TestLoadAndAggregate:
    def _write(self, path, events):
        with open(path, "w") as fh:
            for event in events:
                fh.write(json.dumps(event) + "\n")

    def test_load_skips_malformed_lines(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"stage": "a", "duration_s": 1}\n'
                        "not json at all\n"
                        '{"no_stage_field": true}\n'
                        '{"stage": "b", "duration_s": 2}\n')
        events = load_events(path)
        assert [e["stage"] for e in events] == ["a", "b"]

    def test_load_missing_file_is_empty(self, tmp_path):
        assert load_events(tmp_path / "absent.jsonl") == []

    def test_aggregate(self, tmp_path):
        events = [
            {"stage": "attack/ead", "duration_s": 2.0, "cache": "miss",
             "worker": 1},
            {"stage": "attack/ead", "duration_s": 4.0, "cache": "hit",
             "worker": 2},
            {"stage": "train/classifier", "duration_s": 10.0, "worker": 1},
        ]
        stats = aggregate_events(events)
        ead = stats["attack/ead"]
        assert ead.count == 2
        assert ead.total_s == pytest.approx(6.0)
        assert ead.mean_s == pytest.approx(3.0)
        assert ead.max_s == pytest.approx(4.0)
        assert ead.cache_hits == 1
        assert ead.cache_misses == 1
        assert ead.workers == 2
        assert stats["train/classifier"].count == 1

    def test_render_sorted_by_total(self):
        events = [
            {"stage": "small", "duration_s": 1.0},
            {"stage": "big", "duration_s": 9.0},
        ]
        table = render_timings(events)
        assert table.index("big") < table.index("small")
        assert "total stage time" in table

    def test_render_empty(self):
        assert "no telemetry" in render_timings([])


class TestDurationSum:
    def test_stage_durations_cover_wall_clock(self, tmp_path):
        """Top-level stage durations must account for ~all elapsed time."""
        sink = RunTelemetry(tmp_path / "t.jsonl")
        t0 = time.perf_counter()
        for _ in range(3):
            with sink.stage("work"):
                time.sleep(0.02)
        wall = time.perf_counter() - t0
        total = sum(e["duration_s"] for e in load_events(tmp_path / "t.jsonl"))
        assert total == pytest.approx(wall, rel=0.5)
