"""Fault-injection harness and fault-tolerant runtime behavior.

The ISSUE acceptance scenarios, as tests:

* a crashed worker re-dispatches only the chunk that died with it —
  items in already-completed chunks run exactly once;
* a timed-out item is retried and, once its budget is spent, recorded
  as a terminal :class:`ItemFailure` at its position without aborting
  the rest of the map;
* a parallel run with injected transient faults produces results
  bitwise-identical to a clean serial run (retries reuse item seeds);
* an interrupted sweep resumed with ``resume=True`` recomputes only
  the missing cells, and a chaos sweep (transients + cache corruption)
  publishes artifacts bitwise-identical to the fault-free serial run.

Worker functions live at module level so they pickle across the pool.
"""

from __future__ import annotations

import os
import pickle
import time

import numpy as np
import pytest

from repro.runtime.executor import ParallelExecutor, parallel_map
from repro.runtime.faults import (
    FaultPlan,
    InjectedCrash,
    InjectedFault,
    ItemFailure,
    RetryPolicy,
    corrupt_cache_entry,
)
from repro.runtime.telemetry import (
    configure_telemetry,
    load_events,
    render_fault_summary,
)
from repro.utils.cache import DiskCache

# ----------------------------------------------------------------------
# Picklable worker functions
# ----------------------------------------------------------------------
CRASH_SENTINEL = 99


def _double(value, seed=None):
    return value * 2


def _seeded_draw(value, seed=None):
    """Deterministic per-(item, seed) array — the bitwise-identity probe."""
    return np.random.default_rng(seed).standard_normal(4) + value


def _logged_worker(item, seed=None):
    """Append this item's value to a log file, then return it doubled.

    The CRASH_SENTINEL item hard-exits its worker process — but only on
    its first attempt (a marker file remembers), and only after the
    sibling chunk's items appear in the log, so the pool break cannot
    race ahead of healthy futures and the test stays deterministic.
    """
    log_path, marker_dir, value = item
    if value == CRASH_SENTINEL:
        marker = os.path.join(marker_dir, "crashed-once")
        if not os.path.exists(marker):
            deadline = time.time() + 20.0
            while time.time() < deadline:
                try:
                    with open(log_path) as fh:
                        seen = set(fh.read().split())
                except FileNotFoundError:
                    seen = set()
                if {"0", "1"} <= seen:
                    break
                time.sleep(0.02)
            with open(marker, "w"):
                pass
            os._exit(13)
    with open(log_path, "a") as fh:
        fh.write(f"{value}\n")
    return value * 2


# ----------------------------------------------------------------------
# FaultPlan / RetryPolicy units
# ----------------------------------------------------------------------
class TestRetryPolicy:
    def test_defaults(self):
        policy = RetryPolicy()
        assert policy.timeout_s is None
        assert policy.retries == 2

    @pytest.mark.parametrize("kwargs", [
        {"timeout_s": 0.0}, {"timeout_s": -1.0},
        {"retries": -1}, {"backoff_s": -0.1},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def test_exponential_backoff_with_cap(self):
        policy = RetryPolicy(backoff_s=0.25, backoff_cap_s=1.0)
        assert policy.delay(0) == 0.0
        assert policy.delay(1) == 0.25
        assert policy.delay(2) == 0.5
        assert policy.delay(3) == 1.0
        assert policy.delay(10) == 1.0  # capped

    def test_zero_backoff_never_sleeps(self):
        assert RetryPolicy(backoff_s=0.0).delay(5) == 0.0


class TestFaultPlan:
    def test_explicit_indices_fire_once(self):
        plan = FaultPlan(transients=[3, 5])
        assert plan.kind_for(3) == "transient"
        assert plan.kind_for(4) is None
        with pytest.raises(InjectedFault):
            plan.fire(3, 0, in_worker=False)
        plan.fire(3, 1, in_worker=False)  # budget spent: no-op

    def test_fire_budget_mapping(self):
        plan = FaultPlan(timeouts={2: 3})
        assert plan.fires_for(2) == 3
        assert plan.kind_for(2) == "timeout"

    def test_serial_crash_raises_instead_of_exiting(self):
        plan = FaultPlan(crashes=[0])
        with pytest.raises(InjectedCrash):
            plan.fire(0, 0, in_worker=False)

    def test_rate_decisions_are_deterministic(self):
        a = FaultPlan.from_rates(7, transient=0.5)
        b = FaultPlan.from_rates(7, transient=0.5)
        kinds_a = [a.kind_for(i) for i in range(100)]
        assert kinds_a == [b.kind_for(i) for i in range(100)]
        hits = sum(k == "transient" for k in kinds_a)
        assert 25 <= hits <= 75  # loose: it is a hash, not a promise

    def test_different_seeds_differ(self):
        a = FaultPlan.from_rates(1, transient=0.5)
        b = FaultPlan.from_rates(2, transient=0.5)
        assert ([a.kind_for(i) for i in range(64)]
                != [b.kind_for(i) for i in range(64)])

    def test_corrupts_item_explicit_and_rate(self):
        assert FaultPlan(corrupts=[4]).corrupts_item(4)
        assert not FaultPlan(corrupts=[4]).corrupts_item(5)
        always = FaultPlan.from_rates(0, corrupt=1.0)
        assert all(always.corrupts_item(i) for i in range(10))

    def test_parse_round_trip(self):
        plan = FaultPlan.parse("seed=7, crash=0.05,timeout=0.02,"
                               "transient=0.1,fires=2,hang=120")
        assert plan.seed == 7
        assert plan.rates == (0.05, 0.02, 0.1, 0.0)
        assert plan.fires == 2
        assert plan.hang_s == 120.0

    @pytest.mark.parametrize("spec", ["bogus=1", "crash", "crash=0.1,=2"])
    def test_parse_rejects_bad_specs(self, spec):
        with pytest.raises(ValueError):
            FaultPlan.parse(spec)

    def test_plan_pickles(self):
        plan = FaultPlan.from_rates(3, crash=0.1, corrupt=0.2)
        clone = pickle.loads(pickle.dumps(plan))
        assert [clone.kind_for(i) for i in range(32)] == \
               [plan.kind_for(i) for i in range(32)]

    def test_describe_mentions_faults(self):
        text = FaultPlan(crashes=[1], corrupts=[2]).describe()
        assert "crash@[1]" in text and "corrupt@[2]" in text

    def test_item_failure_is_falsy(self):
        failure = ItemFailure(index=0, kind="timeout", error="x", attempts=3)
        assert not failure
        assert [v for v in [1, failure, 2] if v] == [1, 2]


class TestCorruptCacheEntry:
    def test_diskcache_self_heals_corrupt_entry(self, tmp_path):
        cache = DiskCache(tmp_path)
        path = cache.save("attacks", "k1", {"x": np.arange(4.0)})
        corrupt_cache_entry(path)
        before = cache.stats.stale_discards
        with pytest.raises(KeyError):
            cache.load("attacks", "k1")
        assert cache.stats.stale_discards == before + 1
        assert not cache.contains("attacks", "k1")  # discarded, recomputable


# ----------------------------------------------------------------------
# Executor scenarios (a)–(c)
# ----------------------------------------------------------------------
class TestCrashRedispatch:
    def test_only_dead_chunk_is_redispatched(self, tmp_path):
        """Scenario (a): a worker crash retries its chunk, nothing else."""
        log_path = str(tmp_path / "runs.log")
        items = [(log_path, str(tmp_path), v) for v in (0, 1, CRASH_SENTINEL, 3)]
        executor = ParallelExecutor(2, chunk_size=2,
                                    policy=RetryPolicy(retries=2,
                                                       backoff_s=0.01))
        results = executor.map(_logged_worker, items)
        assert results == [0, 2, CRASH_SENTINEL * 2, 6]

        with open(log_path) as fh:
            runs = fh.read().split()
        # Items 0 and 1 sat in the surviving chunk: exactly one run each.
        assert runs.count("0") == 1
        assert runs.count("1") == 1
        # The dead chunk re-ran: the crash item logs only on attempt 2,
        # and its chunk-mate never got to run on attempt 1.
        assert runs.count(str(CRASH_SENTINEL)) == 1
        assert runs.count("3") == 1

    def test_serial_path_survives_injected_crash(self):
        """On the serial path a crash fault must not kill the process."""
        plan = FaultPlan(crashes={1: 1})
        results = parallel_map(_double, [10, 20, 30], jobs=1, fault_plan=plan,
                               policy=RetryPolicy(retries=1, backoff_s=0.0))
        assert results == [20, 40, 60]

    def test_unretried_crash_is_terminal_record(self):
        plan = FaultPlan(crashes={1: 5})  # outlives any retry budget
        results = parallel_map(_double, [10, 20, 30], jobs=1, fault_plan=plan,
                               policy=RetryPolicy(retries=1, backoff_s=0.0),
                               on_error="record")
        assert results[0] == 20 and results[2] == 60
        failure = results[1]
        assert isinstance(failure, ItemFailure)
        assert failure.kind == "crash"
        assert failure.attempts == 2  # first try + one retry


@pytest.mark.parametrize("jobs", [1, 2], ids=["serial", "pool"])
class TestTimeoutHandling:
    def test_timeout_retries_then_records_terminal_failure(self, jobs):
        """Scenario (b): hung item times out, retries, fails terminally —
        and the rest of the map completes."""
        plan = FaultPlan(timeouts={1: 5}, hang_s=30.0)
        policy = RetryPolicy(timeout_s=0.2, retries=1, backoff_s=0.01)
        start = time.time()
        results = parallel_map(_double, [1, 2, 3], jobs=jobs,
                               fault_plan=plan, policy=policy,
                               on_error="record")
        assert time.time() - start < 20.0  # watchdog, not the 30 s hang
        assert results[0] == 2 and results[2] == 6
        failure = results[1]
        assert isinstance(failure, ItemFailure)
        assert failure.kind == "timeout"
        assert failure.attempts == 2

    def test_transient_timeout_recovers(self, jobs):
        plan = FaultPlan(timeouts={0: 1}, hang_s=30.0)
        policy = RetryPolicy(timeout_s=0.2, retries=2, backoff_s=0.01)
        results = parallel_map(_double, [5, 6], jobs=jobs, fault_plan=plan,
                               policy=policy)
        assert results == [10, 12]


class TestDeterminismUnderFaults:
    def test_parallel_faulted_equals_serial_clean(self):
        """Scenario (c): transient chaos must not change a single bit."""
        items = list(range(8))
        clean = parallel_map(_seeded_draw, items, jobs=1, seed=1234)

        plan = FaultPlan(transients={0: 1, 3: 2, 6: 1})
        chaotic = parallel_map(_seeded_draw, items, jobs=3, seed=1234,
                               fault_plan=plan,
                               policy=RetryPolicy(retries=3, backoff_s=0.01))
        for a, b in zip(clean, chaotic):
            assert a.tobytes() == b.tobytes()

    def test_serial_faulted_equals_serial_clean(self):
        items = list(range(5))
        clean = parallel_map(_seeded_draw, items, jobs=1, seed=9)
        chaotic = parallel_map(_seeded_draw, items, jobs=1, seed=9,
                               fault_plan=FaultPlan(transients=[1, 4]),
                               policy=RetryPolicy(retries=1, backoff_s=0.0))
        for a, b in zip(clean, chaotic):
            assert a.tobytes() == b.tobytes()


class TestFaultTelemetry:
    def test_retry_and_giveup_events_logged(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        configure_telemetry(path)
        try:
            plan = FaultPlan(transients={0: 5, 2: 1})
            parallel_map(_double, [1, 2, 3], jobs=1, fault_plan=plan,
                         policy=RetryPolicy(retries=1, backoff_s=0.0),
                         on_error="record")
        finally:
            configure_telemetry(None)
        events = load_events(path)
        stages = [e["stage"] for e in events]
        assert "runtime/retry" in stages
        assert "runtime/giveup" in stages
        summary = render_fault_summary(events)
        assert summary is not None and "giveups" in summary

    def test_fault_summary_none_when_clean(self):
        assert render_fault_summary([{"stage": "runtime/map"}]) is None


class TestOnErrorRaise:
    def test_terminal_failure_raises_original_error(self):
        plan = FaultPlan(transients={1: 5})
        with pytest.raises(InjectedFault):
            parallel_map(_double, [1, 2], jobs=1, fault_plan=plan,
                         policy=RetryPolicy(retries=1, backoff_s=0.0))

    def test_invalid_on_error_rejected(self):
        with pytest.raises(ValueError):
            ParallelExecutor(1, on_error="explode")


# ----------------------------------------------------------------------
# Scenario (d): checkpoint/resume on a real (smoke) attack sweep
# ----------------------------------------------------------------------
SWEEP_KAPPAS = [0.0]
SWEEP_BETAS = [1e-1]
SWEEP_POLICY = RetryPolicy(retries=2, backoff_s=0.01)


@pytest.fixture(scope="module")
def sweep_ctx(tmp_path_factory):
    from repro.experiments import SMOKE, ExperimentContext

    cache = DiskCache(tmp_path_factory.mktemp("fault_sweep_cache"))
    return ExperimentContext("digits", profile=SMOKE, cache=cache, seed=0)


def _grid_hashes(ctx):
    from repro.experiments import sweeps
    from repro.utils.cache import stable_hash

    cells = sweeps.attack_grid(ctx, kappas=SWEEP_KAPPAS, betas=SWEEP_BETAS)
    return {
        (sweeps._cell_id(cell), slot): stable_hash(
            ctx.cache.load("attacks", key))
        for cell in cells
        for slot, key in sweeps._cell_keys(ctx, cell).items()
    }


@pytest.fixture(scope="module")
def baseline_hashes(sweep_ctx):
    """Clean serial sweep: the bitwise ground truth for every chaos run."""
    from repro.experiments import sweeps

    summary = sweeps.precompute_attacks(sweep_ctx, kappas=SWEEP_KAPPAS,
                                        betas=SWEEP_BETAS, jobs=1)
    assert summary["computed"] == 2 and summary["failed"] == 0
    return _grid_hashes(sweep_ctx)


class TestSweepResume:
    def test_resume_recomputes_only_missing_cells(self, sweep_ctx,
                                                  baseline_hashes):
        """A killed run leaves a torn artifact; --resume heals just it."""
        from repro.experiments import sweeps

        ctx = sweep_ctx
        cells = sweeps.attack_grid(ctx, kappas=SWEEP_KAPPAS, betas=SWEEP_BETAS)
        cw_cell = next(c for c in cells if c["attack"] == "cw")
        for key in sweeps._cell_keys(ctx, cw_cell).values():
            corrupt_cache_entry(ctx.cache._path("attacks", key))

        # Without load-verification the torn cell looks complete...
        assert sweeps.missing_cells(ctx, cells) == []
        # ...but resume verifies, recomputes exactly it, and nothing else.
        summary = sweeps.precompute_attacks(ctx, kappas=SWEEP_KAPPAS,
                                            betas=SWEEP_BETAS, jobs=2,
                                            resume=True, policy=SWEEP_POLICY)
        assert summary["computed"] == 1
        assert summary["cached"] == 1
        assert summary["failed"] == 0
        assert _grid_hashes(ctx) == baseline_hashes

        manifest = sweeps.load_checkpoint(
            ctx, sweeps.sweep_checkpoint_key(ctx, cells))
        assert manifest["status"] == "complete"
        assert len(manifest["done"]) == 2

    def test_chaos_sweep_bitwise_identical_to_clean(self, sweep_ctx,
                                                    baseline_hashes):
        """ISSUE acceptance: transients + corruption, identical artifacts."""
        from repro.experiments import sweeps

        ctx = sweep_ctx
        assert ctx.cache.clear("attacks") > 0
        plan = FaultPlan(transients={0: 1}, corrupts={1: 1})
        summary = sweeps.precompute_attacks(ctx, kappas=SWEEP_KAPPAS,
                                            betas=SWEEP_BETAS, jobs=2,
                                            policy=SWEEP_POLICY,
                                            fault_plan=plan)
        assert summary["computed"] == 2
        assert summary["failed"] == 0
        assert summary["healed"] >= 1  # the corrupted cell was recrafted
        assert _grid_hashes(ctx) == baseline_hashes

    def test_failed_cell_recorded_then_recovered_by_resume(self, sweep_ctx,
                                                           baseline_hashes):
        """A terminally-failing cell must not abort the sweep, and a later
        resume (fault gone) must recompute only it."""
        from repro.experiments import sweeps

        ctx = sweep_ctx
        assert ctx.cache.clear("attacks") > 0
        plan = FaultPlan(transients={0: 10})  # outlives any retry budget
        summary = sweeps.precompute_attacks(ctx, kappas=SWEEP_KAPPAS,
                                            betas=SWEEP_BETAS, jobs=1,
                                            policy=SWEEP_POLICY,
                                            fault_plan=plan)
        assert summary["failed"] == 1
        cells = sweeps.attack_grid(ctx, kappas=SWEEP_KAPPAS, betas=SWEEP_BETAS)
        manifest = sweeps.load_checkpoint(
            ctx, sweeps.sweep_checkpoint_key(ctx, cells))
        assert manifest["status"] == "partial"
        assert len(manifest["failed"]) == 1
        (failure,) = manifest["failed"].values()
        assert failure["attempts"] == SWEEP_POLICY.retries + 1

        summary = sweeps.precompute_attacks(ctx, kappas=SWEEP_KAPPAS,
                                            betas=SWEEP_BETAS, jobs=1,
                                            resume=True, policy=SWEEP_POLICY)
        assert summary["computed"] == 1  # only the failed cell
        assert summary["failed"] == 0
        assert _grid_hashes(ctx) == baseline_hashes
        manifest = sweeps.load_checkpoint(
            ctx, sweeps.sweep_checkpoint_key(ctx, cells))
        assert manifest["status"] == "complete"


class TestWorkStealingChaos:
    """ISSUE 8: chaos injected into stolen-work sweeps must not change a
    bit relative to the clean serial baseline."""

    def test_stolen_faulted_equals_serial_clean(self):
        items = list(range(10))
        clean = parallel_map(_seeded_draw, items, jobs=1, seed=77)
        plan = FaultPlan(transients={1: 1, 5: 2})
        chaotic = parallel_map(_seeded_draw, items, jobs=3, seed=77,
                               scheduler="work_stealing", fault_plan=plan,
                               policy=RetryPolicy(retries=3, backoff_s=0.0))
        for a, b in zip(clean, chaotic):
            assert a.tobytes() == b.tobytes()

    def test_stolen_crash_redispatch_recovers(self):
        """A worker crash under work-stealing is re-leased and retried."""
        plan = FaultPlan(crashes={2: 1})
        out = parallel_map(_double, [1, 2, 3, 4, 5], jobs=2,
                           scheduler="work_stealing", fault_plan=plan,
                           policy=RetryPolicy(retries=2, backoff_s=0.01))
        assert out == [2, 4, 6, 8, 10]

    def test_stolen_chaos_sweep_bitwise_identical(self, sweep_ctx,
                                                  baseline_hashes):
        """Transients + corruption under the stealing scheduler still
        reproduce the serial sweep's artifacts exactly."""
        from repro.experiments import sweeps

        ctx = sweep_ctx
        assert ctx.cache.clear("attacks") > 0
        plan = FaultPlan(transients={0: 1}, corrupts={1: 1})
        summary = sweeps.precompute_attacks(ctx, kappas=SWEEP_KAPPAS,
                                            betas=SWEEP_BETAS, jobs=2,
                                            policy=SWEEP_POLICY,
                                            fault_plan=plan,
                                            scheduler="work_stealing")
        assert summary["scheduler"] == "work_stealing"
        assert summary["computed"] == 2
        assert summary["failed"] == 0
        assert summary["healed"] >= 1
        assert _grid_hashes(ctx) == baseline_hashes
