"""Unit tests for the process-pool executor."""

import time

import numpy as np
import pytest

from repro.runtime.executor import (
    SCHEDULERS,
    ParallelExecutor,
    default_chunk_size,
    parallel_map,
    resolve_jobs,
)
from repro.runtime.faults import ItemFailure


def _square(x):
    return x * x


def _noisy(x, seed=None):
    rng = np.random.default_rng(seed)
    return x + float(rng.random())


def _fail_on_three(x):
    if x == 3:
        raise RuntimeError("boom")
    return x


class TestResolveJobs:
    def test_none_and_zero_mean_all_cores(self):
        assert resolve_jobs(None) >= 1
        assert resolve_jobs(0) == resolve_jobs(None)

    def test_explicit_passthrough(self):
        assert resolve_jobs(1) == 1
        assert resolve_jobs(7) == 7

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_jobs(-2)


class TestChunkSize:
    def test_four_chunks_per_worker(self):
        assert default_chunk_size(64, 4) == 4
        assert default_chunk_size(3, 4) == 1

    def test_degenerate_inputs(self):
        assert default_chunk_size(0, 4) == 1
        assert default_chunk_size(10, 0) == 1

    @pytest.mark.parametrize("n_items,jobs", [
        (1, 8), (2, 16), (7, 8), (8, 8),       # fewer items than slots
        (9, 8), (31, 8), (33, 8),              # just over slot counts
        (1, 1), (10_000, 1), (10_000, 64),     # extremes
        (1_000_000, 3),
    ])
    def test_grid_always_at_least_one(self, n_items, jobs):
        """Regression for the n_items < jobs edge case: the chunk size
        must stay >= 1 for every grid point, never 0."""
        chunk = default_chunk_size(n_items, jobs)
        assert chunk >= 1
        assert isinstance(chunk, int)
        if n_items and jobs:
            # Never so large that a single chunk starves other workers
            # (ceil keeps at most ~4 chunks per worker).
            assert chunk <= max(1, -(-n_items // jobs))

    def test_float_inputs_coerced(self):
        assert default_chunk_size(64.0, 4.0) == 4


class TestSerialPath:
    def test_jobs_one_maps_in_order(self):
        assert parallel_map(_square, range(10), jobs=1) == [
            x * x for x in range(10)]

    def test_empty_items(self):
        assert parallel_map(_square, [], jobs=4) == []

    def test_single_item_stays_serial(self):
        assert parallel_map(_square, [5], jobs=8) == [25]

    def test_exceptions_propagate(self):
        with pytest.raises(RuntimeError):
            parallel_map(_fail_on_three, [1, 2, 3], jobs=1)


class TestParallelPath:
    def test_matches_serial(self):
        serial = parallel_map(_square, range(25), jobs=1)
        parallel = parallel_map(_square, range(25), jobs=3)
        assert parallel == serial

    def test_order_preserved_with_chunking(self):
        items = list(range(17))
        out = parallel_map(_square, items, jobs=2, chunk_size=3)
        assert out == [x * x for x in items]

    def test_ndarray_payloads_round_trip(self):
        items = [np.full((2, 2), i, dtype=np.float64) for i in range(6)]
        out = parallel_map(np.sum, items, jobs=2)
        assert out == [float(a.sum()) for a in items]

    def test_exceptions_propagate(self):
        with pytest.raises(RuntimeError):
            parallel_map(_fail_on_three, [1, 2, 3, 4], jobs=2)


class TestSeeding:
    def test_seeds_depend_on_item_index_not_worker(self):
        """The whole determinism contract: jobs must not change results."""
        serial = parallel_map(_noisy, [0.0] * 12, jobs=1, seed=123)
        parallel = parallel_map(_noisy, [0.0] * 12, jobs=3, seed=123)
        assert serial == parallel

    def test_different_items_get_independent_seeds(self):
        out = parallel_map(_noisy, [0.0] * 8, jobs=1, seed=123)
        assert len(set(out)) == 8

    def test_different_root_seeds_differ(self):
        a = parallel_map(_noisy, [0.0] * 4, jobs=1, seed=1)
        b = parallel_map(_noisy, [0.0] * 4, jobs=1, seed=2)
        assert a != b


class TestSerialFallback:
    def test_lambda_falls_back_to_serial(self):
        # Lambdas don't pickle; the pool must degrade, not fail.
        out = parallel_map(lambda x: x + 1, range(6), jobs=2)
        assert out == list(range(1, 7))

    def test_local_closure_falls_back(self):
        offset = 10

        def bump(x):
            return x + offset

        assert parallel_map(bump, range(4), jobs=2) == [10, 11, 12, 13]

    def test_executor_object_reusable(self):
        ex = ParallelExecutor(2, seed=5)
        first = ex.map(_noisy, [0.0] * 3)
        second = ex.map(_noisy, [0.0] * 3)
        assert first == second


def _slow_square(x):
    # Heterogeneous cost: item 0 is a straggler, so a static split
    # leaves idle slots for work-stealing to fill.
    if x == 0:
        time.sleep(0.05)
    return x * x


class TestWorkStealing:
    def test_invalid_scheduler_rejected(self):
        with pytest.raises(ValueError):
            ParallelExecutor(2, scheduler="mystery")
        with pytest.raises(ValueError):
            parallel_map(_square, [1], jobs=2, scheduler="mystery")

    def test_results_identical_to_serial_and_static(self):
        """Stealing only moves work between slots; per-item-index seeding
        makes the three dispatch strategies bitwise interchangeable."""
        items = [0.0] * 17
        serial = parallel_map(_noisy, items, jobs=1, seed=42)
        static = parallel_map(_noisy, items, jobs=4, seed=42)
        stolen = parallel_map(_noisy, items, jobs=4, seed=42,
                              scheduler="work_stealing")
        assert stolen == serial == static

    def test_schedule_stats_populated(self):
        ex = ParallelExecutor(4, scheduler="work_stealing")
        out = ex.map(_square, list(range(23)))
        assert out == [x * x for x in range(23)]
        sched = ex.last_schedule
        assert sched is not None
        assert sched.scheduler == "work_stealing"
        assert sched.items == 23
        assert sched.leases >= 23 / max(1, ex.chunk_size or 1) - 1
        assert sched.steals >= 0
        assert sched.wall_s > 0
        assert all(b >= 0 for b in sched.busy_s.values())
        eff = sched.worker_efficiency()
        assert all(0 <= e <= 1.5 for e in eff.values())

    def test_serial_map_records_full_efficiency(self):
        ex = ParallelExecutor(1)
        ex.map(_square, [1, 2, 3])
        sched = ex.last_schedule
        assert sched.scheduler == "serial"
        assert sched.busy_s == {0: sched.wall_s}

    def test_exceptions_propagate(self):
        with pytest.raises(RuntimeError):
            parallel_map(_fail_on_three, [1, 2, 3, 4], jobs=2,
                         scheduler="work_stealing")

    def test_on_error_record_collects_failures(self):
        out = parallel_map(_fail_on_three, [1, 2, 3, 4], jobs=2,
                           scheduler="work_stealing", on_error="record")
        assert out[0] == 1 and out[1] == 2 and out[3] == 4
        assert isinstance(out[2], ItemFailure)
        assert out[2].kind == "error"

    def test_straggler_profile_matches_serial(self):
        items = list(range(12))
        expected = [x * x for x in items]
        stolen = parallel_map(_slow_square, items, jobs=3,
                              scheduler="work_stealing")
        assert stolen == expected

    def test_schedulers_tuple_exported(self):
        assert SCHEDULERS == ("static", "work_stealing")
