"""Unit tests for the process-pool executor."""

import numpy as np
import pytest

from repro.runtime.executor import (
    ParallelExecutor,
    default_chunk_size,
    parallel_map,
    resolve_jobs,
)


def _square(x):
    return x * x


def _noisy(x, seed=None):
    rng = np.random.default_rng(seed)
    return x + float(rng.random())


def _fail_on_three(x):
    if x == 3:
        raise RuntimeError("boom")
    return x


class TestResolveJobs:
    def test_none_and_zero_mean_all_cores(self):
        assert resolve_jobs(None) >= 1
        assert resolve_jobs(0) == resolve_jobs(None)

    def test_explicit_passthrough(self):
        assert resolve_jobs(1) == 1
        assert resolve_jobs(7) == 7

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_jobs(-2)


class TestChunkSize:
    def test_four_chunks_per_worker(self):
        assert default_chunk_size(64, 4) == 4
        assert default_chunk_size(3, 4) == 1

    def test_degenerate_inputs(self):
        assert default_chunk_size(0, 4) == 1
        assert default_chunk_size(10, 0) == 1


class TestSerialPath:
    def test_jobs_one_maps_in_order(self):
        assert parallel_map(_square, range(10), jobs=1) == [
            x * x for x in range(10)]

    def test_empty_items(self):
        assert parallel_map(_square, [], jobs=4) == []

    def test_single_item_stays_serial(self):
        assert parallel_map(_square, [5], jobs=8) == [25]

    def test_exceptions_propagate(self):
        with pytest.raises(RuntimeError):
            parallel_map(_fail_on_three, [1, 2, 3], jobs=1)


class TestParallelPath:
    def test_matches_serial(self):
        serial = parallel_map(_square, range(25), jobs=1)
        parallel = parallel_map(_square, range(25), jobs=3)
        assert parallel == serial

    def test_order_preserved_with_chunking(self):
        items = list(range(17))
        out = parallel_map(_square, items, jobs=2, chunk_size=3)
        assert out == [x * x for x in items]

    def test_ndarray_payloads_round_trip(self):
        items = [np.full((2, 2), i, dtype=np.float64) for i in range(6)]
        out = parallel_map(np.sum, items, jobs=2)
        assert out == [float(a.sum()) for a in items]

    def test_exceptions_propagate(self):
        with pytest.raises(RuntimeError):
            parallel_map(_fail_on_three, [1, 2, 3, 4], jobs=2)


class TestSeeding:
    def test_seeds_depend_on_item_index_not_worker(self):
        """The whole determinism contract: jobs must not change results."""
        serial = parallel_map(_noisy, [0.0] * 12, jobs=1, seed=123)
        parallel = parallel_map(_noisy, [0.0] * 12, jobs=3, seed=123)
        assert serial == parallel

    def test_different_items_get_independent_seeds(self):
        out = parallel_map(_noisy, [0.0] * 8, jobs=1, seed=123)
        assert len(set(out)) == 8

    def test_different_root_seeds_differ(self):
        a = parallel_map(_noisy, [0.0] * 4, jobs=1, seed=1)
        b = parallel_map(_noisy, [0.0] * 4, jobs=1, seed=2)
        assert a != b


class TestSerialFallback:
    def test_lambda_falls_back_to_serial(self):
        # Lambdas don't pickle; the pool must degrade, not fail.
        out = parallel_map(lambda x: x + 1, range(6), jobs=2)
        assert out == list(range(1, 7))

    def test_local_closure_falls_back(self):
        offset = 10

        def bump(x):
            return x + offset

        assert parallel_map(bump, range(4), jobs=2) == [10, 11, 12, 13]

    def test_executor_object_reusable(self):
        ex = ParallelExecutor(2, seed=5)
        first = ex.map(_noisy, [0.0] * 3)
        second = ex.map(_noisy, [0.0] * 3)
        assert first == second
