"""Property-based tests for the extension modules (squeezers, ROC, schedules)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.defenses.squeezing import bit_depth_reduction, median_smoothing
from repro.evaluation.roc import roc_curve
from repro.nn.schedules import CosineLR, SqrtDecayLR, StepLR

_unit = st.floats(min_value=0.0, max_value=1.0, allow_nan=False, width=32)


def _images(max_side=6):
    return arrays(np.float32, (2, 1, 4, 4), elements=_unit)


class TestSqueezerProperties:
    @given(x=_images(), bits=st.integers(1, 8))
    @settings(max_examples=50, deadline=None)
    def test_bit_depth_idempotent(self, x, bits):
        once = bit_depth_reduction(x, bits)
        twice = bit_depth_reduction(once, bits)
        np.testing.assert_allclose(once, twice, atol=1e-7)

    @given(x=_images(), bits=st.integers(1, 8))
    @settings(max_examples=50, deadline=None)
    def test_bit_depth_bounded_error(self, x, bits):
        out = bit_depth_reduction(x, bits)
        max_err = 0.5 / (2 ** bits - 1)
        assert np.abs(out - x).max() <= max_err + 1e-6

    @given(x=_images(), bits=st.integers(1, 8))
    @settings(max_examples=50, deadline=None)
    def test_bit_depth_stays_in_box(self, x, bits):
        out = bit_depth_reduction(x, bits)
        assert out.min() >= 0.0 and out.max() <= 1.0

    @given(x=_images(), kernel=st.integers(2, 3))
    @settings(max_examples=30, deadline=None)
    def test_median_preserves_box(self, x, kernel):
        out = median_smoothing(x, kernel)
        assert out.min() >= x.min() - 1e-7
        assert out.max() <= x.max() + 1e-7

    @given(c=st.floats(0.0, 1.0, width=32), kernel=st.integers(2, 3))
    @settings(max_examples=30, deadline=None)
    def test_median_fixed_point_on_constants(self, c, kernel):
        x = np.full((1, 1, 6, 6), c, dtype=np.float32)
        np.testing.assert_allclose(median_smoothing(x, kernel), c, atol=1e-7)


class TestRocProperties:
    @given(data=st.data())
    @settings(max_examples=50, deadline=None)
    def test_auc_in_unit_interval(self, data):
        clean = data.draw(arrays(np.float64, (20,),
                                 elements=st.floats(0, 10)))
        adv = data.draw(arrays(np.float64, (20,),
                               elements=st.floats(0, 10)))
        curve = roc_curve(clean, adv)
        assert -1e-9 <= curve.auc <= 1.0 + 1e-9

    @given(data=st.data())
    @settings(max_examples=50, deadline=None)
    def test_curve_monotone_in_fpr(self, data):
        clean = data.draw(arrays(np.float64, (15,),
                                 elements=st.floats(0, 5)))
        adv = data.draw(arrays(np.float64, (15,),
                               elements=st.floats(0, 5)))
        curve = roc_curve(clean, adv)
        # FPR sorted ascending; TPR must be non-decreasing along it.
        assert (np.diff(curve.fpr) >= -1e-12).all()
        assert (np.diff(curve.tpr) >= -1e-12).all()

    @given(data=st.data())
    @settings(max_examples=30, deadline=None)
    def test_shift_improves_or_keeps_auc(self, data):
        scores = data.draw(arrays(np.float64, (25,),
                                  elements=st.floats(0, 1)))
        base = roc_curve(scores, scores).auc
        shifted = roc_curve(scores, scores + 1.5).auc
        assert shifted >= base - 1e-9
        assert shifted >= 0.99  # fully separated


class TestScheduleProperties:
    @given(base=st.floats(1e-4, 1.0), step=st.integers(1, 20),
           gamma=st.floats(0.1, 1.0), epoch=st.integers(0, 100))
    @settings(max_examples=50, deadline=None)
    def test_step_lr_bounds(self, base, step, gamma, epoch):
        lr = StepLR(base, step, gamma).lr_at(epoch)
        assert 0 < lr <= base + 1e-12

    @given(base=st.floats(1e-4, 1.0), total=st.integers(1, 100),
           epoch=st.integers(0, 200))
    @settings(max_examples=50, deadline=None)
    def test_cosine_bounds(self, base, total, epoch):
        lr = CosineLR(base, total).lr_at(epoch)
        assert -1e-12 <= lr <= base + 1e-12

    @given(base=st.floats(1e-4, 1.0), total=st.integers(1, 100))
    @settings(max_examples=50, deadline=None)
    def test_sqrt_decay_monotone(self, base, total):
        sched = SqrtDecayLR(base, total)
        lrs = [sched.lr_at(e) for e in range(total + 1)]
        assert all(a >= b - 1e-12 for a, b in zip(lrs, lrs[1:]))
        assert lrs[-1] == 0.0
