"""Tests for result-analysis helpers."""

import numpy as np
import pytest

from repro.attacks.base import AttackResult
from repro.evaluation.analysis import (
    confusion_pairs,
    per_class_breakdown,
    perturbation_statistics,
)


def _result(rng, n=12, classes=3):
    y_true = np.arange(n) % classes
    success = np.ones(n, dtype=bool)
    success[::4] = False
    y_adv = (y_true + 1) % classes
    y_adv[~success] = y_true[~success]
    return AttackResult(
        x_adv=rng.random((n, 1, 4, 4)).astype(np.float32),
        success=success,
        y_true=y_true.astype(np.int64),
        y_adv=y_adv.astype(np.int64),
        l0=rng.integers(1, 16, n).astype(float),
        l1=rng.random(n) * 5,
        l2=rng.random(n) * 2,
        linf=rng.random(n),
    )


class TestPerClassBreakdown:
    def test_covers_all_classes(self, rng):
        result = _result(rng)
        rows = per_class_breakdown(result)
        assert sorted(r.label for r in rows) == [0, 1, 2]
        assert sum(r.count for r in rows) == len(result)

    def test_success_rates_match_overall(self, rng):
        result = _result(rng)
        rows = per_class_breakdown(result)
        weighted = sum(r.attack_success * r.count for r in rows) / len(result)
        assert weighted == pytest.approx(result.success_rate)

    def test_defense_asr_none_without_magnet(self, rng):
        rows = per_class_breakdown(_result(rng))
        assert all(r.defense_asr is None for r in rows)

    def test_as_row_format(self, rng):
        row = per_class_breakdown(_result(rng))[0].as_row()
        assert len(row) == 5


class TestPerturbationStatistics:
    def test_fields_present(self, rng):
        stats = perturbation_statistics(_result(rng))
        for key in ("n", "sparsity", "mean_l1", "mean_linf",
                    "mean_abs_changed", "peak_to_average", "l1_q0.5"):
            assert key in stats

    def test_sparsity_in_unit_interval(self, rng):
        stats = perturbation_statistics(_result(rng))
        assert 0.0 <= stats["sparsity"] <= 1.0

    def test_empty_success(self, rng):
        result = _result(rng)
        result.success[:] = False
        assert perturbation_statistics(result) == {"n": 0}

    def test_counts_only_successes(self, rng):
        result = _result(rng)
        stats = perturbation_statistics(result)
        assert stats["n"] == int(result.success.sum())


class TestConfusionPairs:
    def test_pairs_ranked_by_count(self, rng):
        result = _result(rng)
        pairs = confusion_pairs(result)
        counts = [p["count"] for p in pairs]
        assert counts == sorted(counts, reverse=True)

    def test_fractions_sum_to_one_when_unbounded(self, rng):
        result = _result(rng)
        pairs = confusion_pairs(result, top_k=100)
        assert sum(p["fraction"] for p in pairs) == pytest.approx(1.0)

    def test_empty_when_no_success(self, rng):
        result = _result(rng)
        result.success[:] = False
        assert confusion_pairs(result) == []
