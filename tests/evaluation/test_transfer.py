"""Tests for the transferability analysis utilities."""

import numpy as np
import pytest

from repro.attacks import FGSM
from repro.attacks.base import AttackResult
from repro.evaluation.transfer import (
    self_transfer_consistency,
    transfer_matrix,
    transfer_success,
)
from repro.nn import Module
from repro.nn.autograd import concatenate


class _ThresholdClassifier(Module):
    """Two-class model: mean pixel above ``cut`` → class 1."""

    def __init__(self, cut):
        super().__init__()
        self.cut = cut

    def forward(self, x):
        m = x.reshape((x.shape[0], -1)).mean(axis=1, keepdims=True)
        return concatenate([(self.cut - m) * 20.0, (m - self.cut) * 20.0],
                           axis=1)


def _result(x_adv, success, y_true):
    n = len(y_true)
    zeros = np.zeros(n)
    return AttackResult(x_adv=x_adv, success=success,
                        y_true=np.asarray(y_true, dtype=np.int64),
                        y_adv=np.zeros(n, dtype=np.int64),
                        l0=zeros, l1=zeros, l2=zeros, linf=zeros)


class TestTransferSuccess:
    def test_full_transfer(self):
        # adversarial images are bright; target with cut 0.5 calls them 1,
        # true label says 0 → all transferred.
        x = np.full((4, 1, 2, 2), 0.9, dtype=np.float32)
        result = _result(x, np.ones(4, bool), np.zeros(4))
        assert transfer_success(result, _ThresholdClassifier(0.5)) == 1.0

    def test_no_transfer(self):
        x = np.full((4, 1, 2, 2), 0.9, dtype=np.float32)
        result = _result(x, np.ones(4, bool), np.zeros(4))
        # target with cut 0.95 still calls them class 0 → no transfer.
        assert transfer_success(result, _ThresholdClassifier(0.95)) == 0.0

    def test_only_source_successes_counted(self):
        x = np.concatenate([np.full((2, 1, 2, 2), 0.9),
                            np.full((2, 1, 2, 2), 0.1)]).astype(np.float32)
        success = np.array([True, True, False, False])
        result = _result(x, success, np.zeros(4))
        assert transfer_success(result, _ThresholdClassifier(0.5)) == 1.0

    def test_nan_when_source_failed(self):
        x = np.zeros((3, 1, 2, 2), dtype=np.float32)
        result = _result(x, np.zeros(3, bool), np.zeros(3))
        assert np.isnan(transfer_success(result, _ThresholdClassifier(0.5)))


class TestTransferMatrix:
    def test_matrix_structure_and_diagonal(self, tiny_classifier,
                                           tiny_splits):
        from repro.attacks import logits_of

        preds = logits_of(tiny_classifier, tiny_splits.test.x).argmax(1)
        idx = np.flatnonzero(preds == tiny_splits.test.y)[:6]
        x0, y0 = tiny_splits.test.x[idx], tiny_splits.test.y[idx]

        models = {"main": tiny_classifier}
        matrix = transfer_matrix(
            lambda m: FGSM(m, epsilon=0.25), models, x0, y0)
        assert set(matrix) == {"main"}
        assert set(matrix["main"]) == {"main"}
        assert self_transfer_consistency(matrix)

    def test_self_consistency_helper(self):
        assert self_transfer_consistency({"a": {"a": 1.0, "b": 0.2}})
        assert not self_transfer_consistency({"a": {"a": 0.5}})
        assert self_transfer_consistency({"a": {"a": float("nan")}})
