"""Unit tests for evaluation metrics and text reporting."""

import numpy as np
import pytest

from repro.defenses.magnet import MagNetDecision
from repro.evaluation.metrics import DefenseBreakdown
from repro.evaluation.reporting import (
    format_architecture,
    format_series,
    format_table,
    sparkline,
)


class TestDefenseBreakdown:
    def _decision(self):
        return MagNetDecision(
            detected=np.array([True, False, False, False]),
            labels_raw=np.array([0, 1, 2, 9]),
            labels_reformed=np.array([0, 1, 9, 9]),
            detector_flags=np.array([[True, False, False, False]]),
        )

    def test_all_schemes(self):
        y = np.array([0, 1, 2, 3])
        bd = DefenseBreakdown.from_decision(self._decision(), y)
        # raw correct: rows 0,1,2 → 0.75
        assert bd.no_defense == pytest.approx(0.75)
        # detected OR raw-correct: rows 0 (det), 1, 2 → 0.75
        assert bd.detector_only == pytest.approx(0.75)
        # reformed correct: rows 0,1 → 0.5
        assert bd.reformer_only == pytest.approx(0.5)
        # detected OR reformed-correct: rows 0,1 → 0.5
        assert bd.full == pytest.approx(0.5)

    def test_full_at_least_reformer_only(self):
        y = np.array([0, 1, 2, 3])
        bd = DefenseBreakdown.from_decision(self._decision(), y)
        assert bd.full >= bd.reformer_only

    def test_as_dict_keys(self):
        y = np.array([0, 1, 2, 3])
        bd = DefenseBreakdown.from_decision(self._decision(), y)
        assert set(bd.as_dict()) == {"no_defense", "detector_only",
                                     "reformer_only", "full"}


class TestFormatTable:
    def test_alignment_and_header(self):
        text = format_table(["name", "val"], [["a", 1.5], ["bbbb", 22.0]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "-" in lines[1]
        assert len(lines) == 4

    def test_title_prepended(self):
        text = format_table(["x"], [[1]], title="My table")
        assert text.splitlines()[0] == "My table"

    def test_nan_rendered_as_dash(self):
        text = format_table(["x"], [[float("nan")]])
        assert "-" in text.splitlines()[-1]

    def test_row_width_mismatch_raises(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])


class TestSparkline:
    def test_monotone_series(self):
        line = sparkline([0.0, 0.5, 1.0])
        assert len(line) == 3
        assert line[0] == " " and line[-1] == "█"

    def test_out_of_range_clipped(self):
        line = sparkline([-1.0, 2.0])
        assert line == " █"

    def test_nan_rendered_as_dot(self):
        assert sparkline([float("nan")]) == "·"


class TestFormatSeries:
    def test_structure(self):
        text = format_series("kappa", [0, 10], {"curve": [0.5, 1.0]},
                             title="t")
        assert "kappa" in text
        assert "curve" in text
        assert "50.000" in text  # percent conversion
        assert "█" in text

    def test_no_percent(self):
        text = format_series("k", [0], {"c": [0.5]}, as_percent=False)
        assert "0.500" in text

    def test_nan_handling(self):
        text = format_series("k", [0], {"c": [float("nan")]})
        assert "·" in text


class TestFormatArchitecture:
    def test_uneven_columns_padded(self):
        text = format_architecture("arch", {
            "left": ["a", "b", "c"],
            "right": ["x"],
        })
        lines = text.splitlines()
        assert lines[0] == "arch"
        # title + header + divider + one line per deepest column row
        assert len(lines) == 3 + 3
        assert "left" in lines[1] and "right" in lines[1]
