"""Unit tests for the oblivious-protocol containers."""

import numpy as np
import pytest

from repro.attacks.base import AttackResult
from repro.defenses.magnet import MagNet
from repro.defenses.reformer import Reformer
from repro.evaluation.protocol import evaluate_oblivious, select_attack_seeds
from repro.datasets.base import Dataset
from repro.nn import Module
from repro.nn.autograd import concatenate


class _MeanClassifier(Module):
    def forward(self, x):
        m = x.reshape((x.shape[0], -1)).mean(axis=1, keepdims=True)
        return concatenate([(0.5 - m) * 20.0, (m - 0.5) * 20.0], axis=1)


class _IdentityAE(Module):
    def forward(self, x):
        return x


def _dataset():
    # 10 dark (class 0) + 10 bright (class 1) images, each with a unique
    # watermark pixel so subsets are distinguishable.
    x = np.concatenate([np.full((10, 1, 2, 2), 0.1),
                        np.full((10, 1, 2, 2), 0.9)]).astype(np.float32)
    x[:, 0, 0, 0] = np.linspace(0.0, 1.0, 20)
    y = np.concatenate([np.zeros(10), np.ones(10)]).astype(np.int64)
    return Dataset(x, y, name="toy")


class TestSelectAttackSeeds:
    def test_all_selected_are_correct(self):
        model = _MeanClassifier()
        data = _dataset()
        x0, y0 = select_attack_seeds(model, data, n=12, seed=1)
        assert len(y0) == 12
        preds = model(x0).data.argmax(1)
        np.testing.assert_array_equal(preds, y0)

    def test_deterministic_given_seed(self):
        model = _MeanClassifier()
        data = _dataset()
        a = select_attack_seeds(model, data, n=8, seed=3)
        b = select_attack_seeds(model, data, n=8, seed=3)
        np.testing.assert_allclose(a[0], b[0])

    def test_different_seeds_differ(self):
        model = _MeanClassifier()
        data = _dataset()
        a = select_attack_seeds(model, data, n=8, seed=3)
        b = select_attack_seeds(model, data, n=8, seed=4)
        assert not np.array_equal(a[1], b[1]) or not np.allclose(a[0], b[0])

    def test_too_many_requested(self):
        with pytest.raises(ValueError):
            select_attack_seeds(_MeanClassifier(), _dataset(), n=100)


class TestEvaluateOblivious:
    def _magnet(self):
        magnet = MagNet(_MeanClassifier(), [], Reformer(_IdentityAE()),
                        name="toy")
        return magnet

    def _result(self):
        # "adversarial" bright images labelled 0 → model says 1 (fooled).
        x_adv = np.full((6, 1, 2, 2), 0.9, dtype=np.float32)
        return AttackResult(
            x_adv=x_adv, success=np.ones(6, bool),
            y_true=np.zeros(6, np.int64), y_adv=np.ones(6, np.int64),
            l0=np.full(6, 4.0), l1=np.full(6, 3.2), l2=np.full(6, 1.6),
            linf=np.full(6, 0.8), name="toy_attack")

    def test_fields_consistent(self):
        ev = evaluate_oblivious(self._magnet(), self._result())
        assert ev.attack_success_rate == pytest.approx(1.0)
        assert ev.defense_accuracy == pytest.approx(0.0)
        assert ev.undefended_success_rate == 1.0
        assert ev.mean_l1 == pytest.approx(3.2)

    def test_summary_string(self):
        ev = evaluate_oblivious(self._magnet(), self._result())
        text = ev.summary()
        assert "toy_attack" in text
        assert "ASR=100.0%" in text
