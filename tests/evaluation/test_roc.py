"""Tests for ROC analysis utilities."""

import numpy as np
import pytest

from repro.evaluation.roc import RocCurve, detector_roc_report, roc_curve


class TestRocCurve:
    def test_perfect_separation_auc_one(self):
        curve = roc_curve([0.1, 0.2, 0.3], [0.7, 0.8, 0.9])
        assert curve.auc == pytest.approx(1.0)

    def test_no_separation_auc_half(self, rng):
        scores = rng.random(500)
        curve = roc_curve(scores, scores.copy())
        assert curve.auc == pytest.approx(0.5, abs=0.02)

    def test_inverted_detector_auc_below_half(self):
        curve = roc_curve([0.7, 0.8, 0.9], [0.1, 0.2, 0.3])
        assert curve.auc < 0.2

    def test_tpr_at_fpr_budget(self):
        clean = np.linspace(0, 1, 100)
        adv = np.linspace(0.9, 2.0, 100)
        curve = roc_curve(clean, adv)
        # at fpr ~0: threshold ~1.0 → adv > 1.0 fraction
        assert curve.tpr_at_fpr(0.0) > 0.85

    def test_tpr_at_fpr_one_is_total(self):
        curve = roc_curve([0.5, 0.6], [0.4, 0.7])
        assert curve.tpr_at_fpr(1.0) == pytest.approx(1.0, abs=0.5)
        # with max budget we can always use the lowest threshold
        assert curve.tpr_at_fpr(1.0) >= curve.tpr_at_fpr(0.0)

    def test_threshold_at_fpr_respects_budget(self):
        clean = np.linspace(0, 1, 200)
        adv = np.linspace(0.5, 1.5, 200)
        curve = roc_curve(clean, adv)
        thr = curve.threshold_at_fpr(0.05)
        assert (clean > thr).mean() <= 0.05 + 1e-9

    def test_curve_endpoints(self):
        curve = roc_curve([0.1, 0.5], [0.3, 0.9])
        assert curve.fpr.min() == 0.0
        assert curve.tpr.min() == 0.0

    def test_empty_inputs_rejected(self):
        with pytest.raises(ValueError):
            roc_curve([], [0.5])


class _StubDetector:
    name = "stub"

    def score(self, x):
        return np.asarray(x).reshape(len(x), -1).mean(axis=1)


class TestDetectorRocReport:
    def test_report_fields(self):
        clean = np.random.default_rng(0).uniform(0, 0.4, (50, 1, 2, 2))
        adv = np.random.default_rng(1).uniform(0.6, 1.0, (50, 1, 2, 2))
        report = detector_roc_report(_StubDetector(), clean, adv)
        assert report["detector"] == "stub"
        assert report["auc"] == pytest.approx(1.0)
        assert report["adv_median"] > report["clean_median"]
        assert set(report["tpr_at_fpr"]) == {"0.001", "0.01", "0.05"}
