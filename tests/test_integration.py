"""Integration tests: the full pipeline end-to-end at smoke scale.

These run the real machinery — data synthesis, training, calibration,
attack crafting, defense evaluation, experiment registry — with the
``smoke`` profile and a per-session temp cache, so they are hermetic and
finish in a few minutes while exercising every cross-module seam the
benchmarks depend on.
"""

import numpy as np
import pytest

from repro.attacks import (
    DeepFool,
    EAD,
    FGSM,
    IterativeFGSM,
    CarliniWagnerL2,
    logits_of,
)
from repro.defenses import build_magnet
from repro.evaluation import evaluate_oblivious, select_attack_seeds
from repro.experiments import SMOKE, ExperimentContext
from repro.models.classifiers import ScaledLogits


@pytest.fixture(scope="session")
def ctx(test_cache):
    """A digits ExperimentContext on the smoke profile (session-cached)."""
    return ExperimentContext("digits", profile=SMOKE, cache=test_cache,
                             seed=3)


@pytest.fixture(scope="session")
def attack_seeds(ctx):
    return ctx.attack_seeds()


class TestContextPlumbing:
    def test_splits_follow_profile(self, ctx):
        assert len(ctx.splits.train) == SMOKE.digits_sizes[0]

    def test_classifier_is_scaled(self, ctx):
        assert isinstance(ctx.classifier, ScaledLogits)
        assert ctx.classifier.scale == SMOKE.logit_scale_digits

    def test_attack_seeds_correctly_classified(self, ctx, attack_seeds):
        x0, y0 = attack_seeds
        assert len(y0) == SMOKE.n_attack("digits")
        preds = logits_of(ctx.classifier, x0).argmax(1)
        np.testing.assert_array_equal(preds, y0)

    def test_magnet_variants_memoized(self, ctx):
        assert ctx.magnet("default") is ctx.magnet("default")
        assert ctx.magnet("default") is not ctx.magnet("jsd")

    def test_magnet_detector_composition(self, ctx):
        assert len(ctx.magnet("default").detectors) == 2
        assert len(ctx.magnet("jsd").detectors) == 4

    def test_attack_results_cached_on_disk(self, ctx):
        kappa = SMOKE.digits_kappas[0]
        first = ctx.cw(kappa)
        second = ctx.cw(kappa)  # from disk this time
        np.testing.assert_allclose(first.x_adv, second.x_adv)
        np.testing.assert_array_equal(first.success, second.success)

    def test_ead_rules_share_one_run(self, ctx):
        kappa = SMOKE.digits_kappas[0]
        both = ctx.ead(1e-1, kappa)
        assert set(both) == {"en", "l1"}
        # Same optimization → identical success masks.
        np.testing.assert_array_equal(both["en"].success,
                                      both["l1"].success)

    def test_invalid_dataset_rejected(self):
        with pytest.raises(KeyError):
            ExperimentContext("imagenet", profile=SMOKE)


class TestAttacksEndToEnd:
    def test_cw_fools_undefended_model(self, ctx, attack_seeds):
        x0, y0 = attack_seeds
        result = ctx.cw(0.0)
        assert result.success_rate > 0.7
        # Successful examples are genuinely misclassified.
        changed = result.y_adv[result.success] != y0[result.success]
        assert changed.all()

    def test_ead_fools_undefended_model(self, ctx):
        result = ctx.ead(1e-1, 0.0)["en"]
        assert result.success_rate > 0.7

    def test_ead_is_sparser_than_cw(self, ctx):
        """The paper's core mechanism: EAD's L0 << C&W's L0."""
        cw = ctx.cw(0.0)
        ead = ctx.ead(1e-1, 0.0)["en"]
        if cw.success.any() and ead.success.any():
            assert ead.mean_distortion("l0") < cw.mean_distortion("l0") * 0.8

    def test_l1_rule_never_beats_en_on_en_score(self, ctx):
        """Decision rules optimize their own objective."""
        both = ctx.ead(1e-1, 0.0)
        ok = both["en"].success
        if ok.any():
            beta = 1e-1
            en_score = beta * both["en"].l1 + both["en"].l2 ** 2
            l1_score = beta * both["l1"].l1 + both["l1"].l2 ** 2
            assert (en_score[ok] <= l1_score[ok] + 1e-4).all()
            assert (both["l1"].l1[ok] <= both["en"].l1[ok] + 1e-4).all()

    def test_adversarial_examples_in_valid_box(self, ctx):
        for result in (ctx.cw(0.0), ctx.ead(1e-1, 0.0)["en"]):
            assert result.x_adv.min() >= 0.0
            assert result.x_adv.max() <= 1.0

    def test_higher_kappa_costs_more_distortion(self, ctx):
        lo = ctx.cw(SMOKE.digits_kappas[0])
        hi = ctx.cw(SMOKE.digits_kappas[-1])
        if lo.success.any() and hi.success.any():
            assert (hi.mean_distortion("l2")
                    >= lo.mean_distortion("l2") - 0.05)

    def test_fgsm_and_ifgsm_run(self, ctx):
        fgsm = ctx.fgsm(epsilon=0.15)
        ifgsm = ctx.ifgsm(epsilon=0.15, steps=5)
        assert fgsm.x_adv.shape == ifgsm.x_adv.shape
        # Iterative FGSM is at least as strong as single-step.
        assert ifgsm.success_rate >= fgsm.success_rate - 0.1
        assert fgsm.linf.max() <= 0.15 + 1e-5
        assert ifgsm.linf.max() <= 0.15 + 1e-5

    def test_deepfool_runs_and_is_small(self, ctx):
        result = ctx.deepfool(max_iterations=15)
        assert result.success_rate > 0.5
        if result.success.any():
            # DeepFool targets minimal perturbations at kappa=0.
            assert result.mean_distortion("l2") < 5.0


class TestDefenseEndToEnd:
    def test_clean_accuracy_behind_magnet(self, ctx):
        magnet = ctx.magnet("default")
        acc = magnet.clean_accuracy(ctx.splits.test.x, ctx.splits.test.y)
        assert acc > 0.75

    def test_oblivious_evaluation_consistency(self, ctx, attack_seeds):
        _, y0 = attack_seeds
        magnet = ctx.magnet("default")
        result = ctx.cw(SMOKE.digits_kappas[0])
        ev = evaluate_oblivious(magnet, result)
        assert ev.attack_success_rate == pytest.approx(
            1.0 - ev.defense_accuracy)
        assert ev.breakdown.detector_only >= ev.breakdown.no_defense - 1e-9
        assert ev.breakdown.full >= ev.breakdown.reformer_only - 1e-9

    def test_select_attack_seeds_validates(self, ctx):
        with pytest.raises(ValueError):
            select_attack_seeds(ctx.classifier, ctx.splits.test,
                                n=10 ** 6)

    def test_defense_accuracy_beats_no_defense(self, ctx, attack_seeds):
        _, y0 = attack_seeds
        magnet = ctx.magnet("default")
        result = ctx.cw(SMOKE.digits_kappas[-1])
        from repro.evaluation import defense_breakdown

        bd = defense_breakdown(magnet, result.x_adv, y0)
        assert bd.full >= bd.no_defense


class TestExperimentRegistry:
    def test_structural_experiments_run(self, test_cache):
        from repro.experiments import run_experiment

        report = run_experiment("table2", profile=SMOKE, cache=test_cache)
        assert report.exp_id == "table2"
        assert "Conv.Sigmoid" in report.text

    def test_unknown_experiment_rejected(self):
        from repro.experiments import run_experiment

        with pytest.raises(KeyError):
            run_experiment("table99", profile=SMOKE)

    def test_registry_covers_all_tables_and_figures(self):
        from repro.experiments import EXPERIMENT_IDS

        expected = {f"table{i}" for i in range(1, 8)} | {
            f"fig{i}" for i in range(1, 14)}
        assert set(EXPERIMENT_IDS) == expected

    def test_describe_experiments(self):
        from repro.experiments import describe_experiments

        desc = describe_experiments()
        assert len(desc) == 20
        assert all(isinstance(v, str) and v for v in desc.values())
