"""Tests for the CLI entry point, logging setup, and context serialization."""

import numpy as np
import pytest

from repro.experiments.__main__ import main as cli_main
from repro.experiments.context import _result_from_arrays, _result_to_arrays
from repro.utils.logging import get_logger


class TestCli:
    def test_list_prints_all_experiments(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        for exp_id in ("table1", "table7", "fig1", "fig13"):
            assert exp_id in out

    def test_help(self, capsys):
        assert cli_main(["--help"]) == 0
        assert "Usage" in capsys.readouterr().out

    def test_no_args_shows_help(self, capsys):
        assert cli_main([]) == 0
        assert "Usage" in capsys.readouterr().out

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            cli_main(["table99"])


class TestLogging:
    def test_logger_namespaced(self):
        log = get_logger("my.component")
        assert log.name == "repro.my.component"

    def test_repro_prefix_not_duplicated(self):
        log = get_logger("repro.attacks")
        assert log.name == "repro.attacks"

    def test_same_logger_returned(self):
        assert get_logger("x") is get_logger("x")


class TestAttackResultSerialization:
    def test_round_trip_preserves_everything(self, rng):
        from repro.attacks.base import AttackResult

        n = 5
        result = AttackResult(
            x_adv=rng.random((n, 1, 4, 4)).astype(np.float32),
            success=np.array([True, False, True, True, False]),
            y_true=np.arange(n, dtype=np.int64),
            y_adv=np.arange(n, dtype=np.int64)[::-1].copy(),
            l0=rng.random(n), l1=rng.random(n), l2=rng.random(n),
            linf=rng.random(n),
            const=rng.random(n),
            name="orig",
        )
        arrays = _result_to_arrays(result)
        restored = _result_from_arrays(arrays, "restored")
        np.testing.assert_allclose(restored.x_adv, result.x_adv)
        np.testing.assert_array_equal(restored.success, result.success)
        np.testing.assert_array_equal(restored.y_true, result.y_true)
        np.testing.assert_array_equal(restored.y_adv, result.y_adv)
        np.testing.assert_allclose(restored.l1, result.l1)
        np.testing.assert_allclose(restored.const, result.const)
        assert restored.name == "restored"

    def test_none_const_becomes_nan(self, rng):
        from repro.attacks.base import AttackResult

        result = AttackResult(
            x_adv=rng.random((2, 1, 2, 2)).astype(np.float32),
            success=np.ones(2, bool),
            y_true=np.zeros(2, np.int64), y_adv=np.ones(2, np.int64),
            l0=np.zeros(2), l1=np.zeros(2), l2=np.zeros(2), linf=np.zeros(2),
            const=None,
        )
        arrays = _result_to_arrays(result)
        assert np.isnan(arrays["const"]).all()


class TestArgparseCli:
    """The redesigned argparse surface: run / list / timings."""

    def _parser(self):
        from repro.experiments.__main__ import build_parser

        return build_parser()

    def test_run_flags_parse(self):
        args = self._parser().parse_args(
            ["run", "table1", "fig2", "--profile", "smoke", "--jobs", "4",
             "--cache-dir", "/tmp/c", "--seed", "3", "--telemetry", "t.jsonl"])
        assert args.command == "run"
        assert args.experiments == ["table1", "fig2"]
        assert args.profile == "smoke"
        assert args.jobs == 4
        assert args.cache_dir == "/tmp/c"
        assert args.seed == 3
        assert args.telemetry == "t.jsonl"

    def test_run_defaults(self):
        args = self._parser().parse_args(["run", "all"])
        assert args.jobs == 1
        assert args.seed == 0
        assert args.profile is None
        assert args.cache_dir is None

    def test_bad_profile_rejected(self):
        with pytest.raises(SystemExit):
            self._parser().parse_args(["run", "table1", "--profile", "warp"])

    def test_negative_jobs_rejected_at_parse_time(self, capsys):
        """--jobs -1 is an argparse error (exit 2), not a crash later."""
        with pytest.raises(SystemExit) as err:
            self._parser().parse_args(["run", "table1", "--jobs", "-1"])
        assert err.value.code == 2
        assert "must be >= 0" in capsys.readouterr().err

    def test_jobs_zero_means_all_cores(self):
        import os

        from repro.runtime.executor import resolve_jobs

        args = self._parser().parse_args(["run", "table1", "--jobs", "0"])
        assert args.jobs == 0
        assert resolve_jobs(args.jobs) == (os.cpu_count() or 1)

    def test_huge_jobs_clamped_not_fatal(self):
        from repro.runtime.executor import MAX_JOBS, resolve_jobs

        args = self._parser().parse_args(["run", "table1", "--jobs", "1000000"])
        assert args.jobs == 1000000  # parsing accepts it...
        assert resolve_jobs(args.jobs) == MAX_JOBS  # ...execution clamps it

    def test_negative_jobs_rejected_by_executor_too(self):
        """Library callers bypassing argparse hit the same validation."""
        from repro.runtime.executor import resolve_jobs

        with pytest.raises(ValueError, match="must be >= 0"):
            resolve_jobs(-1)
        with pytest.raises(ValueError, match="must be >= 0"):
            resolve_jobs(-4)

    def test_fault_flags_parse(self):
        args = self._parser().parse_args(
            ["run", "table1", "--resume", "--timeout", "30",
             "--retries", "5", "--inject-faults", "seed=7,crash=0.1"])
        assert args.resume is True
        assert args.timeout == 30.0
        assert args.retries == 5
        assert args.inject_faults.seed == 7
        assert args.inject_faults.rates[0] == 0.1

    def test_bad_fault_spec_rejected(self, capsys):
        with pytest.raises(SystemExit) as err:
            self._parser().parse_args(
                ["run", "table1", "--inject-faults", "explode=1"])
        assert err.value.code == 2
        assert "explode" in capsys.readouterr().err

    def test_run_requires_experiment(self):
        with pytest.raises(SystemExit):
            self._parser().parse_args(["run"])

    def test_legacy_bare_id_aliases_run(self, capsys, monkeypatch):
        """`python -m repro.experiments table99` still reaches run_experiment."""
        from repro.experiments.__main__ import main as cli

        with pytest.raises(KeyError):
            cli(["table99", "--profile", "smoke"])

    def test_list_subcommand(self, capsys):
        assert cli_main(["list"]) == 0
        assert "table1" in capsys.readouterr().out


class TestCliResolution:
    def test_profile_flag_wins(self, monkeypatch):
        from repro.experiments.__main__ import _resolve_profile

        monkeypatch.setenv("REPRO_PROFILE", "paper")
        assert _resolve_profile("smoke").name == "smoke"

    def test_profile_env_fallback_warns(self, monkeypatch):
        from repro.experiments.__main__ import _resolve_profile

        monkeypatch.setenv("REPRO_PROFILE", "smoke")
        with pytest.warns(DeprecationWarning):
            assert _resolve_profile(None).name == "smoke"

    def test_profile_default_quick(self, monkeypatch):
        from repro.experiments.__main__ import _resolve_profile

        monkeypatch.delenv("REPRO_PROFILE", raising=False)
        assert _resolve_profile(None).name == "quick"

    def test_profile_unknown_raises(self, monkeypatch):
        from repro.experiments.__main__ import _resolve_profile

        monkeypatch.delenv("REPRO_PROFILE", raising=False)
        with pytest.raises(KeyError):
            _resolve_profile("warp")

    def test_cache_dir_env_fallback_warns(self, monkeypatch):
        from repro.experiments.__main__ import _resolve_cache_dir

        monkeypatch.setenv("REPRO_CACHE_DIR", "/tmp/legacy")
        with pytest.warns(DeprecationWarning):
            assert _resolve_cache_dir(None) == "/tmp/legacy"
        assert _resolve_cache_dir("/tmp/flag") == "/tmp/flag"

    def test_telemetry_path_resolution(self, monkeypatch):
        from repro.experiments.__main__ import _telemetry_path

        monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
        assert _telemetry_path(None, "/c").endswith("telemetry.jsonl")
        assert _telemetry_path("x.jsonl", "/c") == "x.jsonl"
        assert _telemetry_path("off", "/c") is None
        monkeypatch.setenv("REPRO_TELEMETRY", "/env/t.jsonl")
        assert _telemetry_path(None, "/c") == "/env/t.jsonl"


class TestTimingsCommand:
    def test_timings_reads_log(self, tmp_path, capsys):
        import json

        log_path = tmp_path / "t.jsonl"
        events = [
            {"stage": "attack/ead", "duration_s": 2.5, "cache": "miss",
             "worker": 11},
            {"stage": "train/classifier", "duration_s": 7.0, "worker": 11},
        ]
        log_path.write_text("\n".join(json.dumps(e) for e in events) + "\n")
        assert cli_main(["timings", "--telemetry", str(log_path)]) == 0
        out = capsys.readouterr().out
        assert "attack/ead" in out
        assert "train/classifier" in out
        assert "2 events" in out

    def test_timings_missing_log_fails_cleanly(self, tmp_path, capsys):
        missing = tmp_path / "none.jsonl"
        assert cli_main(["timings", "--telemetry", str(missing)]) == 1
        assert "no telemetry events" in capsys.readouterr().out


class TestTraceCommand:
    def _write_span_log(self, path):
        from repro.obs import configure_observability, span

        configure_observability(path)
        try:
            with span("sweep/precompute", cells=2):
                for step in range(2):
                    with span("sweep/cell", step=step):
                        pass
        finally:
            configure_observability(None)

    def test_trace_renders_span_tree(self, tmp_path, capsys):
        log_path = tmp_path / "t.jsonl"
        self._write_span_log(log_path)
        assert cli_main(["trace", "--telemetry", str(log_path)]) == 0
        out = capsys.readouterr().out
        assert "sweep/precompute" in out
        assert "sweep/cell ×2" in out           # collapsed by default

    def test_trace_no_collapse(self, tmp_path, capsys):
        log_path = tmp_path / "t.jsonl"
        self._write_span_log(log_path)
        assert cli_main(["trace", "--telemetry", str(log_path),
                         "--no-collapse"]) == 0
        out = capsys.readouterr().out
        assert out.count("sweep/cell") == 2

    def test_trace_missing_log_fails_cleanly(self, tmp_path, capsys):
        missing = tmp_path / "none.jsonl"
        assert cli_main(["trace", "--telemetry", str(missing)]) == 1
        assert "no telemetry events" in capsys.readouterr().out


class TestServeCLI:
    """The serve subcommand: parsing and config validation."""

    def _parser(self):
        from repro.experiments.__main__ import build_parser

        return build_parser()

    def test_serve_flags_parse(self):
        args = self._parser().parse_args(
            ["serve", "--dataset", "objects", "--variant", "wide",
             "--host", "0.0.0.0", "--port", "9000", "--max-batch", "16",
             "--max-wait-ms", "2.5", "--max-queue", "64", "--workers", "2",
             "--max-requests", "10", "--profile", "smoke"])
        assert args.command == "serve"
        assert args.dataset == "objects"
        assert args.variant == "wide"
        assert args.host == "0.0.0.0"
        assert args.port == 9000
        assert args.max_batch == 16
        assert args.max_wait_ms == 2.5
        assert args.max_queue == 64
        assert args.workers == 2
        assert args.max_requests == 10

    def test_serve_defaults(self):
        args = self._parser().parse_args(["serve"])
        assert args.dataset == "digits"
        assert args.variant == "default"
        assert args.port == 8080
        assert args.max_batch == 32
        assert args.max_wait_ms == 5.0
        assert args.max_queue == 256
        assert args.workers == 1
        assert args.max_requests is None

    def test_serve_bad_dataset_rejected(self):
        with pytest.raises(SystemExit):
            self._parser().parse_args(["serve", "--dataset", "sounds"])

    def test_serving_config_validation(self):
        from repro.serving import ServingConfig

        with pytest.raises(ValueError):
            ServingConfig(max_batch=0)
        with pytest.raises(ValueError):
            ServingConfig(max_wait_ms=-1)
        with pytest.raises(ValueError):
            ServingConfig(workers=0)
        with pytest.raises(ValueError):
            ServingConfig(request_timeout_s=0)
        assert ServingConfig(max_wait_ms=0).max_wait_s == 0.0


class TestScenariosCLI:
    """The scenarios subcommand: enumeration and run-flag parsing."""

    def _parser(self):
        from repro.experiments.__main__ import build_parser

        return build_parser()

    def test_scenarios_list_enumerates_registry(self, capsys):
        assert cli_main(["scenarios", "list"]) == 0
        out = capsys.readouterr().out
        assert "digits/default/oblivious/ead_l1" in out
        assert "digits/jsd/detector_aware/cw" in out
        assert "gaussian_noise" in out  # corruption rows present
        assert "108 of 108 scenarios selected" in out
        assert "digits/wide_jsd/bpda/ead_en" in out  # PR 9 grid expansion

    def test_scenarios_list_axis_filters(self, capsys):
        assert cli_main(["scenarios", "list",
                         "--threat-model", "bpda",
                         "--dataset", "digits"]) == 0
        out = capsys.readouterr().out
        ids = [line for line in out.splitlines() if "/" in line]
        assert ids
        assert all(line.startswith("digits/") and "/bpda/" in line
                   for line in ids)

    def test_scenarios_list_repeatable_filters(self, capsys):
        assert cli_main(["scenarios", "list",
                         "--threat-model", "oblivious",
                         "--threat-model", "detector_aware"]) == 0
        out = capsys.readouterr().out
        assert "/oblivious/" in out and "/detector_aware/" in out
        assert "/bpda/" not in out

    def test_scenarios_run_flags_parse(self):
        args = self._parser().parse_args(
            ["scenarios", "run", "--threat-model", "bpda",
             "--profile", "smoke", "--jobs", "2", "--resume",
             "--timeout", "60", "--retries", "1",
             "--cache-dir", "/tmp/cache", "--seed", "3"])
        assert args.command == "scenarios"
        assert args.scenario_command == "run"
        assert args.threat_model == ["bpda"]
        assert args.profile == "smoke"
        assert args.jobs == 2
        assert args.resume is True
        assert args.timeout == 60.0
        assert args.retries == 1
        assert args.seed == 3

    def test_scenarios_run_no_match_fails_cleanly(self, capsys):
        assert cli_main(["scenarios", "run",
                         "--dataset", "objects",
                         "--workload", "corruption"]) == 1
        assert "no scenarios match" in capsys.readouterr().out

    def test_scenarios_without_subcommand_shows_usage(self, capsys):
        assert cli_main(["scenarios"]) == 2
        assert "scenarios {list,run}" in capsys.readouterr().out
