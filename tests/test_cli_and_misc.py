"""Tests for the CLI entry point, logging setup, and context serialization."""

import numpy as np
import pytest

from repro.experiments.__main__ import main as cli_main
from repro.experiments.context import _result_from_arrays, _result_to_arrays
from repro.utils.logging import get_logger


class TestCli:
    def test_list_prints_all_experiments(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        for exp_id in ("table1", "table7", "fig1", "fig13"):
            assert exp_id in out

    def test_help(self, capsys):
        assert cli_main(["--help"]) == 0
        assert "Usage" in capsys.readouterr().out

    def test_no_args_shows_help(self, capsys):
        assert cli_main([]) == 0
        assert "Usage" in capsys.readouterr().out

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            cli_main(["table99"])


class TestLogging:
    def test_logger_namespaced(self):
        log = get_logger("my.component")
        assert log.name == "repro.my.component"

    def test_repro_prefix_not_duplicated(self):
        log = get_logger("repro.attacks")
        assert log.name == "repro.attacks"

    def test_same_logger_returned(self):
        assert get_logger("x") is get_logger("x")


class TestAttackResultSerialization:
    def test_round_trip_preserves_everything(self, rng):
        from repro.attacks.base import AttackResult

        n = 5
        result = AttackResult(
            x_adv=rng.random((n, 1, 4, 4)).astype(np.float32),
            success=np.array([True, False, True, True, False]),
            y_true=np.arange(n, dtype=np.int64),
            y_adv=np.arange(n, dtype=np.int64)[::-1].copy(),
            l0=rng.random(n), l1=rng.random(n), l2=rng.random(n),
            linf=rng.random(n),
            const=rng.random(n),
            name="orig",
        )
        arrays = _result_to_arrays(result)
        restored = _result_from_arrays(arrays, "restored")
        np.testing.assert_allclose(restored.x_adv, result.x_adv)
        np.testing.assert_array_equal(restored.success, result.success)
        np.testing.assert_array_equal(restored.y_true, result.y_true)
        np.testing.assert_array_equal(restored.y_adv, result.y_adv)
        np.testing.assert_allclose(restored.l1, result.l1)
        np.testing.assert_allclose(restored.const, result.const)
        assert restored.name == "restored"

    def test_none_const_becomes_nan(self, rng):
        from repro.attacks.base import AttackResult

        result = AttackResult(
            x_adv=rng.random((2, 1, 2, 2)).astype(np.float32),
            success=np.ones(2, bool),
            y_true=np.zeros(2, np.int64), y_adv=np.ones(2, np.int64),
            l0=np.zeros(2), l1=np.zeros(2), l2=np.zeros(2), linf=np.zeros(2),
            const=None,
        )
        arrays = _result_to_arrays(result)
        assert np.isnan(arrays["const"]).all()
