"""Unit tests for classifier / autoencoder architectures."""

import numpy as np
import pytest

from repro.models import (
    architecture_rows,
    build_autoencoder,
    build_cifar_ae,
    build_classifier,
    build_digit_classifier,
    build_mnist_ae_deep,
    build_mnist_ae_shallow,
    build_object_classifier,
)
from repro.models.classifiers import ScaledLogits
from repro.nn import Tensor


class TestClassifiers:
    def test_digit_classifier_shapes(self, rng):
        model = build_digit_classifier(seed=0)
        out = model(Tensor(rng.random((2, 1, 28, 28)).astype(np.float32)))
        assert out.shape == (2, 10)

    def test_object_classifier_shapes(self, rng):
        model = build_object_classifier(seed=0)
        out = model(Tensor(rng.random((2, 3, 32, 32)).astype(np.float32)))
        assert out.shape == (2, 10)

    def test_paper_variants_build(self, rng):
        model = build_digit_classifier(seed=0, variant="paper")
        out = model(Tensor(rng.random((1, 1, 28, 28)).astype(np.float32)))
        assert out.shape == (1, 10)
        model = build_object_classifier(seed=0, variant="paper")
        out = model(Tensor(rng.random((1, 3, 32, 32)).astype(np.float32)))
        assert out.shape == (1, 10)

    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError):
            build_digit_classifier(variant="huge")

    def test_seed_determinism(self, rng):
        a = build_digit_classifier(seed=5)
        b = build_digit_classifier(seed=5)
        x = rng.random((1, 1, 28, 28)).astype(np.float32)
        np.testing.assert_allclose(a(Tensor(x)).data, b(Tensor(x)).data)

    def test_dispatch(self):
        assert build_classifier("digits").num_parameters() > 0
        assert build_classifier("objects").num_parameters() > 0
        with pytest.raises(KeyError):
            build_classifier("imagenet")


class TestScaledLogits:
    def test_scales_logits_exactly(self, rng):
        base = build_digit_classifier(seed=0)
        scaled = ScaledLogits(base, 4.0)
        x = rng.random((2, 1, 28, 28)).astype(np.float32)
        np.testing.assert_allclose(scaled(Tensor(x)).data,
                                   4.0 * base(Tensor(x)).data, rtol=1e-6)

    def test_predictions_unchanged(self, rng):
        base = build_digit_classifier(seed=0)
        scaled = ScaledLogits(base, 7.0)
        x = rng.random((4, 1, 28, 28)).astype(np.float32)
        np.testing.assert_array_equal(base(Tensor(x)).data.argmax(1),
                                      scaled(Tensor(x)).data.argmax(1))

    def test_gradient_scales_too(self, rng):
        base = build_digit_classifier(seed=0)
        scaled = ScaledLogits(base, 3.0)
        x = rng.random((1, 1, 28, 28)).astype(np.float32)
        t1 = Tensor(x, requires_grad=True)
        base(t1).sum().backward()
        t2 = Tensor(x, requires_grad=True)
        scaled(t2).sum().backward()
        np.testing.assert_allclose(t2.grad, 3.0 * t1.grad, rtol=1e-4)

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            ScaledLogits(build_digit_classifier(), 0.0)


class TestAutoencoders:
    def test_deep_ae_preserves_shape(self, rng):
        ae = build_mnist_ae_deep(width=3, seed=0)
        out = ae(Tensor(rng.random((2, 1, 28, 28)).astype(np.float32)))
        assert out.shape == (2, 1, 28, 28)

    def test_shallow_ae_preserves_shape(self, rng):
        ae = build_mnist_ae_shallow(width=3, seed=0)
        out = ae(Tensor(rng.random((2, 1, 28, 28)).astype(np.float32)))
        assert out.shape == (2, 1, 28, 28)

    def test_cifar_ae_preserves_shape(self, rng):
        ae = build_cifar_ae(width=3, seed=0)
        out = ae(Tensor(rng.random((2, 3, 32, 32)).astype(np.float32)))
        assert out.shape == (2, 3, 32, 32)

    def test_output_in_unit_range(self, rng):
        # Final sigmoid keeps reconstructions in [0, 1].
        ae = build_mnist_ae_deep(width=3, seed=0)
        out = ae(Tensor(rng.random((1, 1, 28, 28)).astype(np.float32)))
        assert out.data.min() >= 0.0 and out.data.max() <= 1.0

    def test_width_changes_parameter_count(self):
        thin = build_mnist_ae_deep(width=3)
        wide = build_mnist_ae_deep(width=24)
        assert wide.num_parameters() > thin.num_parameters()

    def test_dispatch_and_validation(self):
        assert build_autoencoder("digits", "deep").num_parameters() > 0
        assert build_autoencoder("digits", "shallow").num_parameters() > 0
        assert build_autoencoder("objects", "deep").num_parameters() > 0
        with pytest.raises(KeyError):
            build_autoencoder("digits", "resnet")
        with pytest.raises(KeyError):
            build_autoencoder("speech", "deep")


class TestArchitectureRows:
    def test_digits_deep_matches_paper_table2(self):
        rows = architecture_rows("digits", "deep", 256)
        assert rows[0] == "Conv.Sigmoid 3x3x256"
        assert "AveragePooling 2x2" in rows
        assert "Upsampling 2x2" in rows
        assert rows[-1] == "Conv.Sigmoid 3x3x1"
        assert len(rows) == 7

    def test_digits_shallow_matches_paper_table2(self):
        rows = architecture_rows("digits", "shallow", 256)
        assert len(rows) == 3
        assert rows[-1] == "Conv.Sigmoid 3x3x1"

    def test_objects_matches_paper_table5(self):
        rows = architecture_rows("objects", "deep", 256)
        assert len(rows) == 3
        assert rows[-1] == "Conv.Sigmoid 3x3x3"

    def test_unknown_combo_rejected(self):
        with pytest.raises(KeyError):
            architecture_rows("digits", "resnet", 3)
