"""Tests for full-model serialization."""

import numpy as np
import pytest

from repro.models import load_model, register_builder, save_model
from repro.models.io import BUILDERS
from repro.nn import Dense, Sequential, Tensor
from repro.utils.rng import rng_from_seed


class TestSaveLoadRoundTrip:
    def test_classifier_round_trip(self, tmp_path, rng):
        from repro.models import build_digit_classifier

        model = build_digit_classifier(seed=3)
        path = save_model(model, tmp_path / "clf.npz", "digit_classifier",
                          {"seed": 3})
        restored = load_model(path)
        x = rng.random((2, 1, 28, 28)).astype(np.float32)
        np.testing.assert_allclose(model(Tensor(x)).data,
                                   restored(Tensor(x)).data, rtol=1e-6)

    def test_autoencoder_round_trip(self, tmp_path, rng):
        from repro.models import build_mnist_ae_deep

        model = build_mnist_ae_deep(width=3, seed=1)
        path = save_model(model, tmp_path / "ae.npz", "mnist_ae_deep",
                          {"width": 3, "seed": 1})
        restored = load_model(path)
        x = rng.random((2, 1, 28, 28)).astype(np.float32)
        np.testing.assert_allclose(model(Tensor(x)).data,
                                   restored(Tensor(x)).data, rtol=1e-6)

    def test_loaded_model_in_eval_mode(self, tmp_path):
        from repro.models import build_mnist_ae_shallow

        model = build_mnist_ae_shallow(width=3, seed=0)
        path = save_model(model, tmp_path / "m.npz", "mnist_ae_shallow",
                          {"width": 3, "seed": 0})
        assert not load_model(path).training


class TestValidation:
    def test_unknown_builder_rejected_on_save(self, tmp_path):
        from repro.models import build_digit_classifier

        with pytest.raises(KeyError):
            save_model(build_digit_classifier(), tmp_path / "x.npz",
                       "mystery_net", {})

    def test_non_model_file_rejected(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, a=np.ones(3))
        with pytest.raises(ValueError):
            load_model(path)

    def test_register_custom_builder(self, tmp_path, rng):
        def build_tiny(seed=0):
            return Sequential(Dense(4, 2, rng=rng_from_seed(seed)))

        register_builder("tiny_net", build_tiny)
        try:
            model = build_tiny(seed=5)
            path = save_model(model, tmp_path / "t.npz", "tiny_net",
                              {"seed": 5})
            restored = load_model(path)
            x = rng.random((3, 4)).astype(np.float32)
            np.testing.assert_allclose(model(Tensor(x)).data,
                                       restored(Tensor(x)).data, rtol=1e-6)
        finally:
            BUILDERS.pop("tiny_net", None)

    def test_register_non_callable_rejected(self):
        with pytest.raises(TypeError):
            register_builder("bad", 42)
