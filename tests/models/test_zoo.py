"""Unit tests for the disk-cached model zoo."""

import numpy as np
import pytest

from repro.models import (
    AutoencoderSpec,
    ClassifierSpec,
    ModelZoo,
    data_fingerprint,
)
from repro.nn import Tensor, accuracy, no_grad


class TestSpecs:
    def test_classifier_spec_config_round_trip(self):
        spec = ClassifierSpec(dataset="digits", epochs=2)
        cfg = spec.config()
        assert cfg["dataset"] == "digits"
        assert cfg["epochs"] == 2

    def test_autoencoder_spec_config(self):
        spec = AutoencoderSpec(dataset="digits", width=8, loss="mae")
        cfg = spec.config()
        assert cfg["width"] == 8
        assert cfg["loss"] == "mae"

    def test_specs_hashable(self):
        assert hash(ClassifierSpec(dataset="digits")) == hash(
            ClassifierSpec(dataset="digits"))


class TestDataFingerprint:
    def test_deterministic(self, tiny_splits):
        assert data_fingerprint(tiny_splits) == data_fingerprint(tiny_splits)

    def test_sensitive_to_data(self, tiny_splits):
        from repro.datasets import load_digit_splits

        other = load_digit_splits(n_train=400, n_val=120, n_test=240, seed=8)
        assert data_fingerprint(tiny_splits) != data_fingerprint(other)


class TestZooTraining:
    def test_classifier_reaches_high_accuracy(self, tiny_classifier,
                                              tiny_splits):
        acc = accuracy(tiny_classifier, tiny_splits.test.x, tiny_splits.test.y)
        assert acc > 0.9

    def test_classifier_left_in_eval_mode(self, tiny_classifier):
        assert not tiny_classifier.training

    def test_autoencoder_reconstructs(self, tiny_autoencoder, tiny_splits):
        x = tiny_splits.test.x[:50]
        with no_grad():
            recon = tiny_autoencoder(Tensor(x)).data
        err = np.abs(recon - x).mean()
        assert err < 0.15

    def test_memory_cache_returns_same_object(self, tiny_zoo,
                                              tiny_classifier_spec):
        a = tiny_zoo.classifier(tiny_classifier_spec)
        b = tiny_zoo.classifier(tiny_classifier_spec)
        assert a is b

    def test_disk_cache_restores_weights(self, tiny_splits, test_cache,
                                         tiny_classifier_spec,
                                         tiny_classifier):
        # A fresh zoo sharing the cache must restore, not retrain.
        fresh_zoo = ModelZoo(tiny_splits, cache=test_cache)
        restored = fresh_zoo.classifier(tiny_classifier_spec)
        assert restored is not tiny_classifier
        x = tiny_splits.test.x[:8]
        with no_grad():
            np.testing.assert_allclose(restored(Tensor(x)).data,
                                       tiny_classifier(Tensor(x)).data,
                                       rtol=1e-6)

    def test_model_meta_recorded(self, tiny_zoo, tiny_classifier_spec,
                                 tiny_classifier):
        meta = tiny_zoo.model_meta(tiny_classifier_spec)
        assert "test_accuracy" in meta

    def test_mae_loss_spec_trains(self, tiny_zoo):
        spec = AutoencoderSpec(dataset="digits", kind="shallow", width=3,
                               epochs=2, loss="mae")
        ae = tiny_zoo.autoencoder(spec)
        assert not ae.training
