"""Cross-attack property tests: invariants every AttackResult must hold.

Rather than checking one attack's idiosyncrasies, this module asserts
the contract shared by all of them against a real trained classifier:

* adversarial images respect the [0, 1] pixel box,
* the distortion norms an attack *reports* match norms *recomputed*
  from its returned examples (no stale or pre-clip bookkeeping),
* failed rows carry the unmodified original image,
* EAD's two decision rules each minimize their own objective — the
  ``en`` pick has the smaller elastic-net score ``beta*L1 + L2^2`` and
  the ``l1`` pick the smaller L1 — on every successful example.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks import (
    CarliniWagnerL2,
    DeepFool,
    EAD,
    FGSM,
    IterativeFGSM,
    logits_of,
)
from repro.attacks.base import flat_norms

EAD_BETA = 1e-1


@pytest.fixture(scope="module")
def seeds(tiny_classifier, tiny_splits):
    preds = logits_of(tiny_classifier, tiny_splits.test.x).argmax(1)
    idx = np.flatnonzero(preds == tiny_splits.test.y)[:8]
    return tiny_splits.test.x[idx], tiny_splits.test.y[idx]


@pytest.fixture(scope="module")
def ead_results(tiny_classifier, seeds):
    x0, y0 = seeds
    attack = EAD(tiny_classifier, beta=EAD_BETA, kappa=0.0,
                 binary_search_steps=3, max_iterations=60,
                 initial_const=1.0)
    return attack.attack_both(x0, y0)


@pytest.fixture(scope="module")
def all_results(tiny_classifier, seeds, ead_results):
    """name -> AttackResult for every attack family, small budgets."""
    x0, y0 = seeds
    results = {
        "cw": CarliniWagnerL2(tiny_classifier, kappa=0.0,
                              binary_search_steps=3, max_iterations=60,
                              initial_const=1.0, lr=5e-2).attack(x0, y0),
        "ead_en": ead_results["en"],
        "ead_l1": ead_results["l1"],
        "fgsm": FGSM(tiny_classifier, epsilon=0.15).attack(x0, y0),
        "ifgsm": IterativeFGSM(tiny_classifier, epsilon=0.15,
                               step_size=0.03, steps=8).attack(x0, y0),
        "deepfool": DeepFool(tiny_classifier,
                             max_iterations=20).attack(x0, y0),
    }
    return results


ATTACK_NAMES = ("cw", "ead_en", "ead_l1", "fgsm", "ifgsm", "deepfool")


@pytest.mark.parametrize("name", ATTACK_NAMES)
class TestSharedInvariants:
    def test_box_constraint(self, all_results, name):
        x_adv = all_results[name].x_adv
        assert x_adv.min() >= 0.0
        assert x_adv.max() <= 1.0

    def test_reported_norms_match_recomputed(self, all_results, seeds, name):
        result = all_results[name]
        x0, _ = seeds
        norms = flat_norms(result.x_adv - x0)
        for order in ("l0", "l1", "l2", "linf"):
            np.testing.assert_allclose(
                getattr(result, order), norms[order],
                rtol=1e-5, atol=1e-6,
                err_msg=f"{name}: reported {order} != recomputed")

    def test_failed_rows_are_originals(self, all_results, seeds, name):
        result = all_results[name]
        x0, _ = seeds
        failed = ~result.success
        if failed.any():
            np.testing.assert_array_equal(result.x_adv[failed], x0[failed])

    def test_failed_rows_have_zero_distortion(self, all_results, name):
        result = all_results[name]
        failed = ~result.success
        if failed.any():
            assert result.l1[failed].max() == 0.0
            assert result.l2[failed].max() == 0.0

    def test_shapes_consistent(self, all_results, seeds, name):
        result = all_results[name]
        x0, y0 = seeds
        assert result.x_adv.shape == x0.shape
        for field in ("success", "y_true", "y_adv", "l0", "l1", "l2", "linf"):
            assert getattr(result, field).shape == y0.shape


class TestEADDecisionRules:
    """Each rule's pick must minimize its own objective (per example)."""

    @staticmethod
    def _en_score(result):
        return EAD_BETA * result.l1 + result.l2 ** 2

    def test_en_pick_minimizes_elastic_net(self, ead_results):
        ok = ead_results["en"].success
        assert ok.any(), "need at least one success to compare objectives"
        en_score = self._en_score(ead_results["en"])
        l1_score = self._en_score(ead_results["l1"])
        assert (en_score[ok] <= l1_score[ok] + 1e-4).all()

    def test_l1_pick_minimizes_l1(self, ead_results):
        ok = ead_results["en"].success
        assert ok.any()
        assert (ead_results["l1"].l1[ok]
                <= ead_results["en"].l1[ok] + 1e-4).all()

    def test_rules_agree_on_success_and_labels(self, ead_results):
        np.testing.assert_array_equal(ead_results["en"].success,
                                      ead_results["l1"].success)
        np.testing.assert_array_equal(ead_results["en"].y_true,
                                      ead_results["l1"].y_true)
