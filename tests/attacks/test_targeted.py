"""Targeted-attack coverage for C&W and EAD (paper eq. (2))."""

import numpy as np
import pytest

from repro.attacks import CarliniWagnerL2, EAD, logits_of


@pytest.fixture(scope="module")
def targeted_setup(tiny_classifier, tiny_splits):
    preds = logits_of(tiny_classifier, tiny_splits.test.x).argmax(1)
    idx = np.flatnonzero(preds == tiny_splits.test.y)[:6]
    x0 = tiny_splits.test.x[idx]
    y_true = tiny_splits.test.y[idx]
    # Target: the next class cyclically (never the true label).
    targets = (y_true + 1) % 10
    return x0, y_true, targets


class TestTargetedCW:
    def test_reaches_target_class(self, tiny_classifier, targeted_setup):
        x0, y_true, targets = targeted_setup
        attack = CarliniWagnerL2(tiny_classifier, kappa=0.0,
                                 binary_search_steps=4, max_iterations=80,
                                 initial_const=1.0, lr=5e-2, targeted=True)
        result = attack.attack(x0, targets)
        if result.success.any():
            preds = logits_of(tiny_classifier,
                              result.x_adv[result.success]).argmax(1)
            np.testing.assert_array_equal(preds, targets[result.success])

    def test_some_targets_reached(self, tiny_classifier, targeted_setup):
        x0, _, targets = targeted_setup
        attack = CarliniWagnerL2(tiny_classifier, kappa=0.0,
                                 binary_search_steps=4, max_iterations=80,
                                 initial_const=1.0, lr=5e-2, targeted=True)
        result = attack.attack(x0, targets)
        assert result.success_rate > 0.3


class TestTargetedEAD:
    def test_reaches_target_class(self, tiny_classifier, targeted_setup):
        x0, y_true, targets = targeted_setup
        attack = EAD(tiny_classifier, beta=1e-2, kappa=0.0,
                     binary_search_steps=4, max_iterations=80,
                     initial_const=1.0, targeted=True)
        result = attack.attack(x0, targets)
        if result.success.any():
            preds = logits_of(tiny_classifier,
                              result.x_adv[result.success]).argmax(1)
            np.testing.assert_array_equal(preds, targets[result.success])

    def test_targeted_harder_than_untargeted(self, tiny_classifier,
                                             targeted_setup):
        """Reaching a *specific* wrong class costs at least as much
        distortion as reaching any wrong class."""
        x0, y_true, targets = targeted_setup
        untargeted = EAD(tiny_classifier, beta=1e-2, kappa=0.0,
                         binary_search_steps=3, max_iterations=60,
                         initial_const=1.0).attack(x0, y_true)
        targeted = EAD(tiny_classifier, beta=1e-2, kappa=0.0,
                       binary_search_steps=3, max_iterations=60,
                       initial_const=1.0, targeted=True).attack(x0, targets)
        both = untargeted.success & targeted.success
        if both.sum() >= 3:
            assert (targeted.l2[both].mean()
                    >= untargeted.l2[both].mean() - 0.3)
