"""Contract tests for the batch-first attack API.

Every attack takes ``attack(x0, labels)`` batch-in/batch-out with
keyword-only constructor knobs; the base class owns the ``N=0`` fast
path (no model calls), ``attack_one`` survives as a deprecated shim, and
the optimization attacks expose per-lane diagnostics wired into the
``attack/iterations`` metric.
"""

import warnings

import numpy as np
import pytest

from repro.attacks import (
    Attack,
    AttackResult,
    CarliniWagnerL2,
    DeepFool,
    EAD,
    FGSM,
    IterativeFGSM,
    JSMA,
    MomentumFGSM,
    PGD,
    RandomNoise,
    ZOO,
    concat_results,
    flat_norms,
    resolve_batch_mode,
)
from repro.obs import counter


class _ExplodingModel:
    """Stands in for a Module; any forward access means the fast path leaked."""

    def __getattr__(self, name):
        raise AssertionError(f"model touched via .{name} on the N=0 path")


def _empty_batch():
    return (np.zeros((0, 1, 28, 28), dtype=np.float32),
            np.zeros(0, dtype=np.int64))


ATTACK_FACTORIES = [
    pytest.param(lambda m: FGSM(m, epsilon=0.1), id="fgsm"),
    pytest.param(lambda m: IterativeFGSM(m, epsilon=0.1, steps=3), id="ifgsm"),
    pytest.param(lambda m: PGD(m, epsilon=0.1, steps=3), id="pgd"),
    pytest.param(lambda m: MomentumFGSM(m, epsilon=0.1, steps=3), id="mifgsm"),
    pytest.param(lambda m: DeepFool(m, max_iterations=5), id="deepfool"),
    pytest.param(lambda m: JSMA(m, max_fraction=0.05), id="jsma"),
    pytest.param(lambda m: ZOO(m, max_iterations=5), id="zoo"),
    pytest.param(lambda m: RandomNoise(m), id="random_noise"),
    pytest.param(lambda m: EAD(m, max_iterations=5), id="ead"),
    pytest.param(lambda m: CarliniWagnerL2(m, max_iterations=5), id="cw"),
]


class TestEmptyBatchFastPath:
    @pytest.mark.parametrize("factory", ATTACK_FACTORIES)
    def test_returns_empty_result_without_model_calls(self, factory):
        attack = factory(_ExplodingModel())
        result = attack.attack(*_empty_batch())
        assert len(result) == 0
        assert result.x_adv.shape == (0, 1, 28, 28)
        assert result.success.dtype == bool
        assert result.success_rate == 0.0
        assert np.isnan(result.mean_distortion("l1"))

    def test_attack_both_empty(self):
        results = EAD(_ExplodingModel()).attack_both(*_empty_batch())
        assert set(results) == {"en", "l1"}
        for result in results.values():
            assert len(result) == 0
            assert result.iterations.shape == (0,)

    def test_empty_still_validates(self):
        attack = FGSM(_ExplodingModel(), epsilon=0.1)
        with pytest.raises(ValueError):
            attack.attack(np.zeros((0, 28, 28)), np.zeros(0, dtype=np.int64))


class TestSingleExampleFastPath:
    def test_per_example_mode_short_circuits_at_n1(self, tiny_classifier,
                                                   tiny_splits):
        """At N=1 both engines are the same code path — bitwise equal."""
        x0 = tiny_splits.test.x[:1]
        y0 = tiny_splits.test.y[:1]
        params = dict(kappa=0.0, binary_search_steps=2, max_iterations=20,
                      initial_const=1.0, lr=5e-2)
        batched = CarliniWagnerL2(tiny_classifier, batch_mode="batched",
                                  **params).attack(x0, y0)
        lanewise = CarliniWagnerL2(tiny_classifier, batch_mode="per_example",
                                   **params).attack(x0, y0)
        np.testing.assert_array_equal(batched.x_adv, lanewise.x_adv)
        np.testing.assert_array_equal(batched.iterations, lanewise.iterations)

    def test_attack_one_is_deprecated_but_works(self, tiny_classifier,
                                                tiny_splits):
        attack = FGSM(tiny_classifier, epsilon=0.1)
        with pytest.warns(DeprecationWarning, match="batch-first"):
            result = attack.attack_one(tiny_splits.test.x[0],
                                       int(tiny_splits.test.y[0]))
        assert len(result) == 1
        assert result.x_adv.shape == (1, 1, 28, 28)

    def test_attack_one_warning_points_at_caller(self, tiny_classifier,
                                                 tiny_splits):
        """The shim warns with ``stacklevel=2``: the reported location is
        the call site, not ``repro/attacks/base.py`` — so downstream
        users see *their* file in the deprecation notice."""
        attack = FGSM(tiny_classifier, epsilon=0.1)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            attack.attack_one(tiny_splits.test.x[0],
                              int(tiny_splits.test.y[0]))
        deprecations = [w for w in caught
                        if issubclass(w.category, DeprecationWarning)]
        assert len(deprecations) == 1
        assert deprecations[0].filename == __file__

    def test_attack_one_accepts_chw_and_nchw(self, tiny_classifier,
                                             tiny_splits):
        attack = FGSM(tiny_classifier, epsilon=0.1)
        chw = tiny_splits.test.x[0]
        with pytest.warns(DeprecationWarning):
            a = attack.attack_one(chw, int(tiny_splits.test.y[0]))
        with pytest.warns(DeprecationWarning):
            b = attack.attack_one(chw[None], int(tiny_splits.test.y[0]))
        np.testing.assert_array_equal(a.x_adv, b.x_adv)


class TestBatchModeKnob:
    def test_resolve_rejects_unknown(self):
        with pytest.raises(ValueError, match="batch_mode"):
            resolve_batch_mode("vectorized")

    @pytest.mark.parametrize("cls", [EAD, CarliniWagnerL2])
    def test_constructors_validate(self, cls):
        with pytest.raises(ValueError, match="batch_mode"):
            cls(_ExplodingModel(), batch_mode="bogus")

    @pytest.mark.parametrize("factory", ATTACK_FACTORIES)
    def test_knobs_are_keyword_only(self, factory):
        attack = factory(_ExplodingModel())
        with pytest.raises(TypeError):
            type(attack)(_ExplodingModel(), 0.1)


class TestDiagnostics:
    @pytest.fixture(scope="class")
    def cw_result(self, tiny_classifier, tiny_splits):
        x0 = tiny_splits.test.x[:4]
        y0 = tiny_splits.test.y[:4]
        attack = CarliniWagnerL2(tiny_classifier, kappa=0.0,
                                 binary_search_steps=2, max_iterations=25,
                                 initial_const=1.0, lr=5e-2)
        before = counter("attack/iterations").value
        result = attack.attack(x0, y0)
        return result, counter("attack/iterations").value - before

    def test_per_lane_fields(self, cw_result):
        result, _ = cw_result
        assert result.iterations.shape == (4,)
        assert result.iterations.dtype == np.int64
        assert result.converged.dtype == bool
        assert (result.iterations >= 1).all()
        assert (result.iterations <= 2 * 25).all()
        assert result.final_const.shape == (4,)
        assert (result.final_const > 0).all()

    def test_iterations_metric_counts_lane_iterations(self, cw_result):
        result, delta = cw_result
        assert delta == int(result.iterations.sum())

    def test_best_const_vs_final_const(self, cw_result):
        result, _ = cw_result
        # const records the c of the best example (NaN on failure);
        # final_const is the bracket after the last bsearch update.
        assert np.isfinite(result.const[result.success]).all()
        assert np.isnan(result.const[~result.success]).all()
        assert np.isfinite(result.final_const).all()

    def test_ead_diagnostics_shared_across_rules(self, tiny_classifier,
                                                 tiny_splits):
        x0 = tiny_splits.test.x[:3]
        y0 = tiny_splits.test.y[:3]
        results = EAD(tiny_classifier, beta=1e-1, kappa=0.0,
                      binary_search_steps=2, max_iterations=25,
                      initial_const=1.0).attack_both(x0, y0)
        np.testing.assert_array_equal(results["en"].iterations,
                                      results["l1"].iterations)
        np.testing.assert_array_equal(results["en"].final_const,
                                      results["l1"].final_const)


def _toy_result(n, name="toy", with_diag=True):
    x = np.random.default_rng(n).random((n, 1, 4, 4)).astype(np.float32)
    norms = flat_norms(x)
    return AttackResult(
        x_adv=x, success=np.ones(n, dtype=bool),
        y_true=np.zeros(n, dtype=np.int64), y_adv=np.ones(n, dtype=np.int64),
        const=np.ones(n), name=name,
        iterations=np.full(n, 7, dtype=np.int64) if with_diag else None,
        converged=np.ones(n, dtype=bool) if with_diag else None,
        final_const=np.ones(n) if with_diag else None,
        **norms)


class TestConcatResults:
    def test_stitches_in_order(self):
        merged = concat_results([_toy_result(2), _toy_result(3)], name="m")
        assert len(merged) == 5
        assert merged.name == "m"
        assert merged.iterations.shape == (5,)
        np.testing.assert_array_equal(
            merged.x_adv, np.concatenate([_toy_result(2).x_adv,
                                          _toy_result(3).x_adv]))

    def test_optional_fields_need_every_part(self):
        merged = concat_results([_toy_result(2),
                                 _toy_result(3, with_diag=False)])
        assert merged.iterations is None
        assert merged.converged is None
        assert merged.const is not None  # present on both parts

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            concat_results([])

    def test_defaults_to_first_name(self):
        merged = concat_results([_toy_result(1, name="a"),
                                 _toy_result(1, name="b")])
        assert merged.name == "a"


class TestBaseValidation:
    def test_subclasses_must_implement_run(self):
        class Hollow(Attack):
            pass

        with pytest.raises(NotImplementedError):
            Hollow(_ExplodingModel()).attack(
                np.zeros((1, 1, 28, 28), dtype=np.float32),
                np.zeros(1, dtype=np.int64))

    def test_box_and_shape_validation(self):
        attack = FGSM(_ExplodingModel(), epsilon=0.1)
        x = np.zeros((2, 1, 28, 28), dtype=np.float32)
        with pytest.raises(ValueError, match="labels shape"):
            attack.attack(x, np.zeros(3, dtype=np.int64))
        with pytest.raises(ValueError, match="\\[0,1\\]"):
            attack.attack(x + 2.0, np.zeros(2, dtype=np.int64))
