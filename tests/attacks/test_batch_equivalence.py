"""Equivalence suite for the masked batch engine (PR: batch-first API).

The batched engine must agree with the ``per_example`` reference path:

* **Tolerance-based** for batched-vs-per-example comparisons: a batch-1
  forward and a batch-N forward are *not* bitwise identical on this
  stack (BLAS picks different kernels per M dimension, ~1e-6 logit
  drift), so x_adv / distortions are compared under a documented
  tolerance while success masks must match exactly.
* **Bitwise** for subset runs: attacking rows ``x0[idx]`` as their own
  batch must reproduce the full-batch rows bit-for-bit — lanes are
  independent, and subset compaction is exactly what the engine does
  internally once lanes freeze.

Plus property tests that frozen lanes are bit-stable once their mask
clears (``MaskedLanes`` unit level and engine level via early abort).
"""

import numpy as np
import pytest

from repro.attacks import (
    CarliniWagnerL2,
    EAD,
    DECISION_RULES,
    MaskedLanes,
    logits_of,
)

# Documented engine tolerance: per-example runs use batch-1 model
# dispatches whose BLAS kernels differ from the batched ones; the drift
# compounds over ~150 optimize iterations but stays tiny.
ATOL_X = 1e-4
ATOL_NORM = 1e-3

SMOKE = dict(binary_search_steps=3, max_iterations=50, initial_const=1.0)


@pytest.fixture(scope="module")
def seeds(tiny_classifier, tiny_splits):
    preds = logits_of(tiny_classifier, tiny_splits.test.x).argmax(1)
    idx = np.flatnonzero(preds == tiny_splits.test.y)[:8]
    return tiny_splits.test.x[idx], tiny_splits.test.y[idx]


def _assert_equivalent(batched, lanewise):
    np.testing.assert_array_equal(batched.success, lanewise.success)
    np.testing.assert_allclose(batched.x_adv, lanewise.x_adv, atol=ATOL_X)
    for order in ("l1", "l2", "linf"):
        np.testing.assert_allclose(getattr(batched, order),
                                   getattr(lanewise, order), atol=ATOL_NORM)
    ok = batched.success
    if ok.any():
        np.testing.assert_allclose(batched.const[ok], lanewise.const[ok],
                                   rtol=1e-6)


class TestCWEquivalence:
    @pytest.mark.parametrize("kappa", [0.0, 1.0])
    def test_batched_matches_per_example(self, tiny_classifier, seeds, kappa):
        x0, y0 = seeds
        params = dict(kappa=kappa, lr=5e-2, **SMOKE)
        batched = CarliniWagnerL2(
            tiny_classifier, batch_mode="batched", **params).attack(x0, y0)
        lanewise = CarliniWagnerL2(
            tiny_classifier, batch_mode="per_example", **params).attack(x0, y0)
        _assert_equivalent(batched, lanewise)

    def test_subset_is_bitwise(self, tiny_classifier, seeds):
        """Lane independence: a subset batch reproduces full-batch rows
        bit-for-bit (the same compaction the engine performs internally)."""
        x0, y0 = seeds
        attack = CarliniWagnerL2(tiny_classifier, kappa=0.0, lr=5e-2, **SMOKE)
        full = attack.attack(x0, y0)
        idx = np.array([1, 3, 4, 6])
        part = attack.attack(x0[idx], y0[idx])
        np.testing.assert_array_equal(part.x_adv, full.x_adv[idx])
        np.testing.assert_array_equal(part.success, full.success[idx])
        np.testing.assert_array_equal(part.iterations, full.iterations[idx])

    def test_deterministic_across_runs(self, tiny_classifier, seeds):
        x0, y0 = seeds
        params = dict(kappa=0.0, lr=5e-2, **SMOKE)
        a = CarliniWagnerL2(tiny_classifier, **params).attack(x0[:4], y0[:4])
        b = CarliniWagnerL2(tiny_classifier, **params).attack(x0[:4], y0[:4])
        np.testing.assert_array_equal(a.x_adv, b.x_adv)
        np.testing.assert_array_equal(a.iterations, b.iterations)


class TestEADEquivalence:
    @pytest.mark.parametrize("kappa", [0.0, 1.0])
    def test_both_rules_match_per_example(self, tiny_classifier, seeds, kappa):
        x0, y0 = seeds
        params = dict(beta=1e-1, kappa=kappa, lr=1e-2, **SMOKE)
        batched = EAD(tiny_classifier, batch_mode="batched",
                      **params).attack_both(x0, y0)
        lanewise = EAD(tiny_classifier, batch_mode="per_example",
                       **params).attack_both(x0, y0)
        for rule in DECISION_RULES:
            _assert_equivalent(batched[rule], lanewise[rule])

    def test_subset_is_bitwise(self, tiny_classifier, seeds):
        x0, y0 = seeds
        attack = EAD(tiny_classifier, beta=1e-1, kappa=0.0, lr=1e-2, **SMOKE)
        full = attack.attack_both(x0, y0)
        idx = np.array([0, 2, 5, 7])
        part = attack.attack_both(x0[idx], y0[idx])
        for rule in DECISION_RULES:
            np.testing.assert_array_equal(part[rule].x_adv,
                                          full[rule].x_adv[idx])
            np.testing.assert_array_equal(part[rule].success,
                                          full[rule].success[idx])

    def test_abort_early_subset_bitwise(self, tiny_classifier, seeds):
        """Frozen lanes stay bit-stable under compaction: with per-lane
        early abort on, the full-batch rows still match a subset run."""
        x0, y0 = seeds
        attack = EAD(tiny_classifier, beta=1e-1, kappa=0.0, lr=1e-2,
                     abort_early=True, **SMOKE)
        full = attack.attack_both(x0, y0)
        idx = np.array([1, 2, 4, 6])
        part = attack.attack_both(x0[idx], y0[idx])
        for rule in DECISION_RULES:
            np.testing.assert_array_equal(part[rule].x_adv,
                                          full[rule].x_adv[idx])
        np.testing.assert_array_equal(part["en"].iterations,
                                      full["en"].iterations[idx])

    def test_abort_early_cuts_lane_iterations(self, tiny_classifier, seeds):
        x0, y0 = seeds
        budget = SMOKE["binary_search_steps"] * SMOKE["max_iterations"]
        eager = EAD(tiny_classifier, beta=1e-1, kappa=0.0, lr=1e-2,
                    abort_early=True, **SMOKE).attack(x0, y0)
        assert eager.iterations.max() <= budget
        assert eager.converged.any()
        # A lane that froze in the final optimize run spent less than its
        # full budget; frozen lanes stopped counting the moment they froze.
        assert (eager.iterations[eager.converged] < budget).all()


class TestMaskedLanesProperties:
    def test_all_active_fast_path(self):
        lanes = MaskedLanes(4)
        assert lanes.sub == slice(None)
        assert lanes.count == 4 and lanes.any_active()
        np.testing.assert_array_equal(lanes.indices(), np.arange(4))

    def test_freeze_is_one_way_and_bit_stable(self):
        lanes = MaskedLanes(5)
        state = np.arange(5, dtype=np.float64)
        lanes.tick()
        lanes.freeze(np.array([1, 3]))
        frozen_snapshot = state[[1, 3]].copy()
        # Post-freeze loop body: every write goes through ``sub``.
        for _ in range(3):
            sub = lanes.sub
            state[sub] += 1.0
            lanes.tick()
        np.testing.assert_array_equal(state[[1, 3]], frozen_snapshot)
        np.testing.assert_array_equal(lanes.iterations,
                                      np.array([4, 1, 4, 1, 4]))
        np.testing.assert_array_equal(lanes.indices(), np.array([0, 2, 4]))

    def test_tick_counts_only_active_lanes(self):
        lanes = MaskedLanes(3)
        lanes.tick(dispatches=2)
        lanes.freeze(np.array([0]))
        lanes.tick(dispatches=2)
        np.testing.assert_array_equal(lanes.iterations, np.array([1, 2, 2]))
        assert lanes.dispatches == 4

    def test_freeze_where_maps_active_order(self):
        lanes = MaskedLanes(5)
        lanes.freeze(np.array([1]))          # active: [0, 2, 3, 4]
        lanes.freeze_where(np.array([False, True, False, True]))
        np.testing.assert_array_equal(lanes.indices(), np.array([0, 3]))

    def test_freeze_where_all_active(self):
        lanes = MaskedLanes(3)
        lanes.freeze_where(np.array([True, False, True]))
        np.testing.assert_array_equal(lanes.indices(), np.array([1]))
        lanes.freeze_where(np.array([True]))
        assert not lanes.any_active()
