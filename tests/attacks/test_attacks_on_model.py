"""Attack tests against a real trained classifier (session fixture).

These check end-to-end attack semantics at kappa=0 with small budgets:
success means genuine misclassification, box constraints hold, and the
attacks' characteristic geometries (EAD sparse, C&W dense-small-L2,
FGSM eps-bounded) emerge.
"""

import numpy as np
import pytest

from repro.attacks import (
    CarliniWagnerL2,
    DeepFool,
    EAD,
    FGSM,
    IterativeFGSM,
    logits_of,
)


@pytest.fixture(scope="module")
def seeds(tiny_classifier, tiny_splits):
    preds = logits_of(tiny_classifier, tiny_splits.test.x).argmax(1)
    idx = np.flatnonzero(preds == tiny_splits.test.y)[:8]
    return tiny_splits.test.x[idx], tiny_splits.test.y[idx]


class TestCarliniWagner:
    @pytest.fixture(scope="class")
    def result(self, tiny_classifier, seeds):
        x0, y0 = seeds
        attack = CarliniWagnerL2(tiny_classifier, kappa=0.0,
                                 binary_search_steps=3, max_iterations=60,
                                 initial_const=1.0, lr=5e-2)
        return attack.attack(x0, y0)

    def test_high_success_at_kappa_zero(self, result):
        assert result.success_rate >= 0.75

    def test_successful_rows_misclassified(self, result, seeds):
        _, y0 = seeds
        assert (result.y_adv[result.success] != y0[result.success]).all()

    def test_box_constraint(self, result):
        assert result.x_adv.min() >= 0.0 and result.x_adv.max() <= 1.0

    def test_const_recorded_for_successes(self, result):
        assert np.isfinite(result.const[result.success]).all()

    def test_distortion_moderate(self, result):
        if result.success.any():
            assert result.mean_distortion("l2") < 8.0

    def test_parameter_validation(self, tiny_classifier):
        with pytest.raises(ValueError):
            CarliniWagnerL2(tiny_classifier, kappa=-1)
        with pytest.raises(ValueError):
            CarliniWagnerL2(tiny_classifier, max_iterations=0)


class TestEADOnModel:
    @pytest.fixture(scope="class")
    def results(self, tiny_classifier, seeds):
        x0, y0 = seeds
        attack = EAD(tiny_classifier, beta=1e-1, kappa=0.0,
                     binary_search_steps=3, max_iterations=60,
                     initial_const=1.0)
        return attack.attack_both(x0, y0)

    def test_high_success(self, results):
        assert results["en"].success_rate >= 0.75

    def test_rules_share_success_mask(self, results):
        np.testing.assert_array_equal(results["en"].success,
                                      results["l1"].success)

    def test_l1_rule_minimizes_l1(self, results):
        ok = results["en"].success
        if ok.any():
            assert (results["l1"].l1[ok]
                    <= results["en"].l1[ok] + 1e-4).all()

    def test_sparsity_vs_cw(self, results, tiny_classifier, seeds):
        x0, y0 = seeds
        cw = CarliniWagnerL2(tiny_classifier, kappa=0.0,
                             binary_search_steps=3, max_iterations=60,
                             initial_const=1.0, lr=5e-2).attack(x0, y0)
        both_ok = results["en"].success & cw.success
        if both_ok.sum() >= 3:
            assert (results["en"].l0[both_ok].mean()
                    < cw.l0[both_ok].mean())

    def test_ista_variant_runs(self, tiny_classifier, seeds):
        x0, y0 = seeds
        attack = EAD(tiny_classifier, beta=1e-1, kappa=0.0,
                     binary_search_steps=2, max_iterations=40,
                     initial_const=1.0, method="ista")
        result = attack.attack(x0[:4], y0[:4])
        assert result.x_adv.shape == x0[:4].shape

    def test_box_constraint(self, results):
        for r in results.values():
            assert r.x_adv.min() >= 0.0 and r.x_adv.max() <= 1.0


class TestFGSMFamily:
    def test_fgsm_linf_bound(self, tiny_classifier, seeds):
        x0, y0 = seeds
        result = FGSM(tiny_classifier, epsilon=0.2).attack(x0, y0)
        assert result.linf.max() <= 0.2 + 1e-5

    def test_fgsm_zero_epsilon_never_succeeds(self, tiny_classifier, seeds):
        x0, y0 = seeds
        result = FGSM(tiny_classifier, epsilon=0.0).attack(x0, y0)
        assert not result.success.any()

    def test_ifgsm_stays_in_ball(self, tiny_classifier, seeds):
        x0, y0 = seeds
        result = IterativeFGSM(tiny_classifier, epsilon=0.15,
                               step_size=0.03, steps=8).attack(x0, y0)
        assert result.linf.max() <= 0.15 + 1e-5

    def test_ifgsm_at_least_as_strong_as_fgsm(self, tiny_classifier, seeds):
        x0, y0 = seeds
        fgsm = FGSM(tiny_classifier, epsilon=0.15).attack(x0, y0)
        bim = IterativeFGSM(tiny_classifier, epsilon=0.15, step_size=0.03,
                            steps=8).attack(x0, y0)
        assert bim.success_rate >= fgsm.success_rate - 1e-9

    def test_parameter_validation(self, tiny_classifier):
        with pytest.raises(ValueError):
            FGSM(tiny_classifier, epsilon=-0.1)
        with pytest.raises(ValueError):
            IterativeFGSM(tiny_classifier, steps=0)


class TestDeepFoolOnModel:
    def test_finds_small_perturbations(self, tiny_classifier, seeds):
        x0, y0 = seeds
        result = DeepFool(tiny_classifier, max_iterations=20).attack(x0, y0)
        assert result.success_rate >= 0.5
        if result.success.any():
            # DeepFool aims for the nearest boundary: small L2.
            assert result.mean_distortion("l2") < 6.0

    def test_box_constraint(self, tiny_classifier, seeds):
        x0, y0 = seeds
        result = DeepFool(tiny_classifier, max_iterations=10).attack(x0, y0)
        assert result.x_adv.min() >= 0.0 and result.x_adv.max() <= 1.0

    def test_parameter_validation(self, tiny_classifier):
        with pytest.raises(ValueError):
            DeepFool(tiny_classifier, max_iterations=0)
