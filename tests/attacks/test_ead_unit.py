"""Unit tests for EAD internals: the shrinkage operator and result plumbing."""

import numpy as np
import pytest

from repro.attacks import EAD, AttackResult, flat_norms, shrink_threshold
from repro.attacks.base import Attack
from repro.nn import Dense, Sequential


class TestShrinkThreshold:
    """Paper eq. (5) — the projected shrinkage-thresholding operator."""

    def test_small_perturbations_zeroed(self):
        x0 = np.full((4,), 0.5, dtype=np.float32)
        z = x0 + np.array([0.05, -0.05, 0.0, 0.09], dtype=np.float32)
        out = shrink_threshold(z, x0, beta=0.1)
        np.testing.assert_allclose(out, x0)

    def test_large_positive_shrunk_by_beta(self):
        x0 = np.array([0.5], dtype=np.float32)
        z = np.array([0.8], dtype=np.float32)
        out = shrink_threshold(z, x0, beta=0.1)
        np.testing.assert_allclose(out, [0.7], rtol=1e-6)

    def test_large_negative_shrunk_by_beta(self):
        x0 = np.array([0.5], dtype=np.float32)
        z = np.array([0.2], dtype=np.float32)
        out = shrink_threshold(z, x0, beta=0.1)
        np.testing.assert_allclose(out, [0.3], rtol=1e-6)

    def test_projection_to_upper_box(self):
        x0 = np.array([0.5], dtype=np.float32)
        z = np.array([1.5], dtype=np.float32)
        out = shrink_threshold(z, x0, beta=0.1)
        np.testing.assert_allclose(out, [1.0])

    def test_projection_to_lower_box(self):
        x0 = np.array([0.5], dtype=np.float32)
        z = np.array([-0.7], dtype=np.float32)
        out = shrink_threshold(z, x0, beta=0.1)
        np.testing.assert_allclose(out, [0.0])

    def test_beta_zero_is_box_projection_only(self):
        x0 = np.array([0.5, 0.5], dtype=np.float32)
        z = np.array([1.7, -0.2], dtype=np.float32)
        out = shrink_threshold(z, x0, beta=0.0)
        np.testing.assert_allclose(out, [1.0, 0.0])

    def test_boundary_exactly_beta_keeps_original(self):
        x0 = np.array([0.5], dtype=np.float32)
        z = np.array([0.6], dtype=np.float32)
        out = shrink_threshold(z, x0, beta=0.1)
        np.testing.assert_allclose(out, [0.5])

    def test_output_dtype_float32(self):
        x0 = np.zeros(3, dtype=np.float32)
        out = shrink_threshold(np.ones(3), x0, 0.1)
        assert out.dtype == np.float32


class TestFlatNorms:
    def test_values(self):
        delta = np.zeros((1, 1, 2, 2), dtype=np.float32)
        delta[0, 0, 0, 0] = 3.0
        delta[0, 0, 1, 1] = -4.0
        norms = flat_norms(delta)
        assert norms["l0"][0] == 2
        assert norms["l1"][0] == pytest.approx(7.0)
        assert norms["l2"][0] == pytest.approx(5.0)
        assert norms["linf"][0] == pytest.approx(4.0)

    def test_zero_perturbation(self):
        norms = flat_norms(np.zeros((2, 1, 2, 2)))
        for key in ("l0", "l1", "l2", "linf"):
            np.testing.assert_allclose(norms[key], 0.0)


class TestEADValidation:
    def _model(self, rng):
        return Sequential(Dense(4, 4, rng=rng))

    def test_invalid_beta(self, rng):
        with pytest.raises(ValueError):
            EAD(self._model(rng), beta=-1.0)

    def test_invalid_kappa(self, rng):
        with pytest.raises(ValueError):
            EAD(self._model(rng), kappa=-1.0)

    def test_invalid_rule(self, rng):
        with pytest.raises(ValueError):
            EAD(self._model(rng), rule="l2")

    def test_invalid_method(self, rng):
        with pytest.raises(ValueError):
            EAD(self._model(rng), method="adam")

    def test_input_validation_shape(self, rng):
        attack = EAD(self._model(rng))
        with pytest.raises(ValueError):
            attack.attack(np.zeros((2, 4)), np.zeros(2))

    def test_input_validation_range(self, rng):
        attack = EAD(self._model(rng))
        with pytest.raises(ValueError):
            attack.attack(np.full((2, 1, 2, 2), 1.5), np.zeros(2))

    def test_label_shape_validation(self, rng):
        attack = EAD(self._model(rng))
        with pytest.raises(ValueError):
            attack.attack(np.zeros((2, 1, 2, 2)), np.zeros(3))


class TestAttackResult:
    def test_failed_rows_carry_original(self, rng):
        model = Sequential(Dense(4, 3, rng=rng))

        class Flat:
            def __call__(self, x):
                return model(x.reshape((x.shape[0], -1)))

        x0 = rng.random((3, 1, 2, 2)).astype(np.float32)
        x_adv = np.clip(x0 + 0.3, 0, 1)
        success = np.array([True, False, True])
        result = AttackResult.from_examples(Flat(), x0, x_adv, success,
                                            np.array([0, 1, 2]))
        np.testing.assert_allclose(result.x_adv[1], x0[1])
        assert result.l1[1] == 0.0

    def test_success_rate(self, rng):
        model = Sequential(Dense(4, 3, rng=rng))

        class Flat:
            def __call__(self, x):
                return model(x.reshape((x.shape[0], -1)))

        x0 = rng.random((4, 1, 2, 2)).astype(np.float32)
        result = AttackResult.from_examples(
            Flat(), x0, x0, np.array([True, True, False, False]),
            np.arange(4))
        assert result.success_rate == pytest.approx(0.5)

    def test_mean_distortion_over_success_only(self, rng):
        model = Sequential(Dense(4, 3, rng=rng))

        class Flat:
            def __call__(self, x):
                return model(x.reshape((x.shape[0], -1)))

        x0 = np.zeros((2, 1, 2, 2), dtype=np.float32)
        x_adv = x0.copy()
        x_adv[0] += 0.5
        x_adv[1] += 0.9
        result = AttackResult.from_examples(
            Flat(), x0, x_adv, np.array([True, False]), np.arange(2))
        assert result.mean_distortion("l1") == pytest.approx(0.5 * 4)

    def test_mean_distortion_nan_when_no_success(self, rng):
        model = Sequential(Dense(4, 3, rng=rng))

        class Flat:
            def __call__(self, x):
                return model(x.reshape((x.shape[0], -1)))

        x0 = np.zeros((2, 1, 2, 2), dtype=np.float32)
        result = AttackResult.from_examples(
            Flat(), x0, x0, np.array([False, False]), np.arange(2))
        assert np.isnan(result.mean_distortion("l2"))

    def test_base_attack_validates(self):
        with pytest.raises(ValueError):
            Attack._validate_inputs(np.zeros((2, 1, 2, 2)), np.zeros((2, 2)))
