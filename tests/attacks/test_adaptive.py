"""Tests for the adaptive (BPDA / detector-aware) attack machinery."""

import numpy as np
import pytest

from repro.attacks import (
    BPDAReformedModel,
    DetectorAwareCW,
    DetectorAwareEAD,
    DetectorMarginPenalty,
    ReformedModel,
    bpda_model,
    detector_aware_attack,
    detector_score_graph,
    logits_of,
    straight_through,
)
from repro.attacks.adaptive import jsd_score_graph, reconstruction_score_graph
from repro.defenses import JSDDetector, MagNet, ReconstructionDetector, Reformer
from repro.nn import Tensor
from repro.nn.autograd import no_grad


@pytest.fixture(scope="module")
def reformer(tiny_autoencoder):
    return Reformer(tiny_autoencoder)


@pytest.fixture(scope="module")
def calibrated_magnet(tiny_classifier, tiny_autoencoder, tiny_splits):
    magnet = MagNet(
        tiny_classifier,
        [ReconstructionDetector(tiny_autoencoder, norm=1),
         JSDDetector(tiny_autoencoder, tiny_classifier, temperature=10.0)],
        Reformer(tiny_autoencoder))
    magnet.calibrate(tiny_splits.val.x, fpr_total=0.1)
    return magnet


class TestStraightThrough:
    def test_forward_is_exact_value(self):
        x = Tensor(np.random.rand(2, 1, 4, 4).astype(np.float32),
                   requires_grad=True)
        value = np.full((2, 1, 4, 4), 0.25, dtype=np.float32)
        out = straight_through(value, x)
        assert np.array_equal(out.data, value)

    def test_backward_is_identity_onto_backward_path(self):
        x = Tensor(np.random.rand(2, 1, 4, 4).astype(np.float32),
                   requires_grad=True)
        out = straight_through(np.zeros_like(x.data), x)
        (out * 3.0).sum().backward()
        np.testing.assert_allclose(x.grad, 3.0)

    def test_no_graph_under_no_grad(self):
        x = Tensor(np.random.rand(2, 1, 4, 4).astype(np.float32),
                   requires_grad=True)
        with no_grad():
            out = straight_through(np.zeros_like(x.data), x)
        assert out._parents == []

    def test_shape_mismatch_rejected(self):
        x = Tensor(np.zeros((2, 1, 4, 4), dtype=np.float32))
        with pytest.raises(ValueError):
            straight_through(np.zeros((1, 1, 4, 4), dtype=np.float32), x)


class TestBPDAReformedModel:
    def test_forward_is_exact_defended_pipeline(self, reformer,
                                                tiny_classifier, tiny_splits):
        """BPDA forward must be bit-identical to classify(reform(x))."""
        x = tiny_splits.test.x[:8]
        model = BPDAReformedModel(reformer, tiny_classifier)
        with no_grad():
            bpda_logits = model(Tensor(x)).data
            true_logits = tiny_classifier(Tensor(reformer.reform(x))).data
        np.testing.assert_array_equal(bpda_logits, true_logits)

    def test_identity_backward_flows(self, reformer, tiny_classifier,
                                     tiny_splits):
        x = Tensor(tiny_splits.test.x[:2], requires_grad=True)
        BPDAReformedModel(reformer, tiny_classifier)(x).sum().backward()
        assert x.grad is not None
        assert np.abs(x.grad).sum() > 0

    def test_surrogate_ae_backward_matches_graybox(self, reformer,
                                                   tiny_autoencoder,
                                                   tiny_classifier,
                                                   tiny_splits):
        """With the true AE as surrogate, the BPDA gradient equals the
        gray-box gradient: both chain the classifier Jacobian at AE(x)
        through the AE Jacobian at x."""
        x_np = tiny_splits.test.x[:2]
        bpda = BPDAReformedModel(reformer, tiny_classifier,
                                 surrogate=tiny_autoencoder)
        graybox = ReformedModel(tiny_autoencoder, tiny_classifier)
        xa = Tensor(x_np, requires_grad=True)
        bpda(xa).sum().backward()
        xb = Tensor(x_np, requires_grad=True)
        graybox(xb).sum().backward()
        np.testing.assert_allclose(xa.grad, xb.grad, atol=1e-5)

    def test_factory(self, calibrated_magnet, tiny_classifier):
        model = bpda_model(calibrated_magnet)
        assert isinstance(model, BPDAReformedModel)
        no_reformer = MagNet(tiny_classifier, [], None)
        with pytest.raises(ValueError):
            bpda_model(no_reformer)


class TestDetectorScoreGraphs:
    def test_reconstruction_graph_matches_numpy(self, tiny_autoencoder,
                                                tiny_splits):
        x = tiny_splits.test.x[:16]
        for norm in (1, 2):
            det = ReconstructionDetector(tiny_autoencoder, norm=norm)
            with no_grad():
                graph = reconstruction_score_graph(
                    tiny_autoencoder, Tensor(x), norm).data
            np.testing.assert_allclose(graph, det.score(x), atol=1e-6)

    def test_jsd_graph_matches_numpy(self, tiny_autoencoder, tiny_classifier,
                                     tiny_splits):
        x = tiny_splits.test.x[:16]
        det = JSDDetector(tiny_autoencoder, tiny_classifier, temperature=10.0)
        with no_grad():
            graph = jsd_score_graph(tiny_autoencoder, tiny_classifier,
                                    Tensor(x), det.temperature).data
        np.testing.assert_allclose(graph, det.score(x), atol=1e-6)

    def test_dispatch_and_gradients(self, calibrated_magnet, tiny_splits):
        x = Tensor(tiny_splits.test.x[:2], requires_grad=True)
        for det in calibrated_magnet.detectors:
            x.zero_grad()
            score = detector_score_graph(det, x)
            score.backward(np.ones_like(score.data))
            assert np.abs(x.grad).sum() > 0, det.name

    def test_unsupported_detector_rejected(self):
        class Weird:
            pass

        with pytest.raises(TypeError):
            detector_score_graph(Weird(), Tensor(np.zeros((1, 1, 8, 8))))


class TestDetectorMarginPenalty:
    def test_zero_under_thresholds(self, calibrated_magnet, tiny_splits):
        """Clean validation inputs sit under the calibrated thresholds, so
        the hinge (at frac=1.0) is zero for most of them."""
        pen = DetectorMarginPenalty(calibrated_magnet.detectors,
                                    threshold_frac=1.0)
        values = pen.values(tiny_splits.val.x)
        assert (values >= 0).all()
        # fpr=0.05 per detector: the overwhelming majority is under both.
        assert (values == 0).mean() > 0.5

    def test_positive_over_thresholds_with_gradient(self, calibrated_magnet,
                                                    tiny_splits, rng):
        """Uniform-noise inputs are far off-manifold: every score blows
        past its threshold, the penalty is positive and has a usable
        input gradient."""
        pen = DetectorMarginPenalty(calibrated_magnet.detectors)
        noise = rng.random((4,) + tiny_splits.test.x.shape[1:],
                           dtype=np.float32)
        values, grad = pen.value_and_grad(noise)
        assert (values > 0).all()
        assert grad.shape == noise.shape
        assert np.abs(grad).sum() > 0
        np.testing.assert_allclose(values, pen.values(noise), atol=1e-6)

    def test_penalty_scales_with_weight(self, calibrated_magnet, tiny_splits,
                                        rng):
        noise = rng.random((3,) + tiny_splits.test.x.shape[1:],
                           dtype=np.float32)
        base = DetectorMarginPenalty(calibrated_magnet.detectors,
                                     weight=1.0).values(noise)
        doubled = DetectorMarginPenalty(calibrated_magnet.detectors,
                                        weight=2.0).values(noise)
        np.testing.assert_allclose(doubled, 2.0 * base, rtol=1e-6)

    def test_validation(self, calibrated_magnet, tiny_autoencoder):
        dets = calibrated_magnet.detectors
        with pytest.raises(ValueError):
            DetectorMarginPenalty(dets, weight=0.0)
        with pytest.raises(ValueError):
            DetectorMarginPenalty(dets, threshold_frac=0.0)
        with pytest.raises(ValueError):
            DetectorMarginPenalty(dets, threshold_frac=1.5)
        uncalibrated = ReconstructionDetector(tiny_autoencoder, norm=1)
        with pytest.raises(RuntimeError):
            DetectorMarginPenalty([uncalibrated])


class TestDetectorAwareAttacks:
    def _correct_batch(self, magnet, splits, n):
        """Test examples the defended pipeline classifies correctly."""
        reformed = magnet.reformer.reform(splits.test.x)
        preds = logits_of(magnet.classifier, reformed).argmax(1)
        idx = np.flatnonzero(preds == splits.test.y)[:n]
        return splits.test.x[idx], splits.test.y[idx]

    def test_success_implies_detection_bypass(self, calibrated_magnet,
                                              tiny_splits):
        """The engine success test folds the penalty in, so a successful
        lane must simultaneously fool the defended pipeline and sit under
        every (safety-scaled) detector threshold."""
        x0, y0 = self._correct_batch(calibrated_magnet, tiny_splits, 6)
        attack = detector_aware_attack(
            calibrated_magnet, family="ead", threshold_frac=0.95,
            binary_search_steps=3, max_iterations=60, initial_const=1.0,
            lr=5e-2, beta=1e-3)
        assert isinstance(attack, DetectorAwareEAD)
        result = attack.attack(x0, y0)
        assert "detector_aware" in result.name
        if result.success.any():
            adv = result.x_adv[result.success]
            decision = calibrated_magnet.decide(adv)
            # Not flagged by any detector...
            assert not decision.detected.any()
            # ...and still misclassified after reforming.
            assert (decision.labels_reformed
                    != y0[result.success]).all()

    def test_cw_family_runs(self, calibrated_magnet, tiny_splits):
        x0, y0 = self._correct_batch(calibrated_magnet, tiny_splits, 3)
        attack = detector_aware_attack(
            calibrated_magnet, family="cw", binary_search_steps=2,
            max_iterations=20, initial_const=1.0, lr=5e-2)
        assert isinstance(attack, DetectorAwareCW)
        result = attack.attack(x0, y0)
        assert result.x_adv.shape == x0.shape
        assert "detector_aware" in result.name

    def test_unknown_family_rejected(self, calibrated_magnet):
        with pytest.raises(ValueError):
            detector_aware_attack(calibrated_magnet, family="pgd")

    def test_per_example_mode_matches_batched(self, calibrated_magnet,
                                              tiny_splits):
        """The detector-aware objective rides the masked engine: both
        engine modes must produce identical examples."""
        x0, y0 = self._correct_batch(calibrated_magnet, tiny_splits, 3)
        kwargs = dict(binary_search_steps=2, max_iterations=15,
                      initial_const=1.0, lr=5e-2)
        model = bpda_model(calibrated_magnet)
        batched = DetectorAwareEAD(model, calibrated_magnet.detectors,
                                   batch_mode="batched", **kwargs)
        lanewise = DetectorAwareEAD(model, calibrated_magnet.detectors,
                                    batch_mode="per_example", **kwargs)
        rb = batched.attack(x0, y0)
        rl = lanewise.attack(x0, y0)
        # Same tolerance as tests/attacks/test_batch_equivalence.py: BLAS
        # reduction order varies with batch size, so float-exact equality
        # across engine modes is not guaranteed.
        np.testing.assert_allclose(rb.x_adv, rl.x_adv, atol=1e-5)
        np.testing.assert_array_equal(rb.success, rl.success)
