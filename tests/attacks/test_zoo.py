"""Tests for the black-box ZOO attack and the random-noise baseline."""

import numpy as np
import pytest

from repro.attacks import RandomNoise, ZOO, logits_of


@pytest.fixture(scope="module")
def seeds(tiny_classifier, tiny_splits):
    preds = logits_of(tiny_classifier, tiny_splits.test.x).argmax(1)
    idx = np.flatnonzero(preds == tiny_splits.test.y)[:6]
    return tiny_splits.test.x[idx], tiny_splits.test.y[idx]


class TestZOO:
    def test_black_box_finds_adversarial_examples(self, tiny_classifier,
                                                  seeds):
        x0, y0 = seeds
        attack = ZOO(tiny_classifier, kappa=0.0, const=10.0,
                     max_iterations=150, coords_per_step=48, lr=0.1)
        result = attack.attack(x0, y0)
        # Black-box with a small budget: expect at least some successes.
        assert result.success_rate > 0.25
        if result.success.any():
            preds = logits_of(tiny_classifier,
                              result.x_adv[result.success]).argmax(1)
            assert (preds != y0[result.success]).all()

    def test_box_constraint(self, tiny_classifier, seeds):
        x0, y0 = seeds
        result = ZOO(tiny_classifier, const=10.0, max_iterations=30,
                     coords_per_step=16).attack(x0, y0)
        assert result.x_adv.min() >= 0.0 and result.x_adv.max() <= 1.0

    def test_deterministic_given_seed(self, tiny_classifier, seeds):
        x0, y0 = seeds
        a = ZOO(tiny_classifier, max_iterations=10, coords_per_step=8,
                seed=4).attack(x0[:2], y0[:2])
        b = ZOO(tiny_classifier, max_iterations=10, coords_per_step=8,
                seed=4).attack(x0[:2], y0[:2])
        np.testing.assert_allclose(a.x_adv, b.x_adv)

    def test_parameter_validation(self, tiny_classifier):
        with pytest.raises(ValueError):
            ZOO(tiny_classifier, kappa=-1)
        with pytest.raises(ValueError):
            ZOO(tiny_classifier, coords_per_step=0)
        with pytest.raises(ValueError):
            ZOO(tiny_classifier, delta=0.0)


class TestRandomNoise:
    def test_zero_epsilon_never_succeeds(self, tiny_classifier, seeds):
        x0, y0 = seeds
        result = RandomNoise(tiny_classifier, epsilon=0.0).attack(x0, y0)
        assert not result.success.any()

    def test_failed_rows_unchanged(self, tiny_classifier, seeds):
        x0, y0 = seeds
        result = RandomNoise(tiny_classifier, epsilon=0.05,
                             tries=2).attack(x0, y0)
        unchanged = ~result.success
        np.testing.assert_allclose(result.x_adv[unchanged], x0[unchanged])

    def test_linf_bounded(self, tiny_classifier, seeds):
        x0, y0 = seeds
        result = RandomNoise(tiny_classifier, epsilon=0.2,
                             tries=3).attack(x0, y0)
        assert result.linf.max() <= 0.2 + 1e-5

    def test_gradient_attacks_beat_noise_floor(self, tiny_classifier, seeds):
        """White-box attacks dominate the unstructured baseline."""
        from repro.attacks import IterativeFGSM

        x0, y0 = seeds
        noise = RandomNoise(tiny_classifier, epsilon=0.15,
                            tries=5).attack(x0, y0)
        bim = IterativeFGSM(tiny_classifier, epsilon=0.15, step_size=0.03,
                            steps=8).attack(x0, y0)
        assert bim.success_rate >= noise.success_rate

    def test_validation(self, tiny_classifier):
        with pytest.raises(ValueError):
            RandomNoise(tiny_classifier, epsilon=-0.1)
        with pytest.raises(ValueError):
            RandomNoise(tiny_classifier, tries=0)
