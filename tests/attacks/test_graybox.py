"""Tests for the gray-box (attack-through-reformer) surrogates."""

import numpy as np
import pytest

from repro.attacks import CarliniWagnerL2, ReformedModel, graybox_model, logits_of
from repro.attacks.graybox import AveragedModel
from repro.defenses import MagNet, ReconstructionDetector, Reformer
from repro.nn import Tensor
from repro.nn.gradcheck import check_gradients
from repro.nn.layers import Dense, Sequential, Sigmoid, Tanh


@pytest.fixture(scope="module")
def pipeline(tiny_classifier, tiny_autoencoder):
    return ReformedModel(tiny_autoencoder, tiny_classifier)


class TestReformedModel:
    def test_forward_matches_manual_composition(self, pipeline,
                                                tiny_autoencoder,
                                                tiny_classifier, tiny_splits):
        x = tiny_splits.test.x[:4]
        direct = pipeline(Tensor(x)).data
        manual = tiny_classifier(tiny_autoencoder(Tensor(x))).data
        np.testing.assert_allclose(direct, manual, rtol=1e-6)

    def test_gradient_flows_through_autoencoder(self, pipeline, tiny_splits):
        x = Tensor(tiny_splits.test.x[:2], requires_grad=True)
        pipeline(x).sum().backward()
        assert x.grad is not None
        assert np.abs(x.grad).sum() > 0

    def test_graybox_cw_survives_reforming(self, pipeline, tiny_classifier,
                                           tiny_autoencoder, tiny_splits):
        """Examples crafted through the reformer keep fooling it."""
        preds = logits_of(pipeline, tiny_splits.test.x).argmax(1)
        idx = np.flatnonzero(preds == tiny_splits.test.y)[:6]
        x0, y0 = tiny_splits.test.x[idx], tiny_splits.test.y[idx]
        attack = CarliniWagnerL2(pipeline, kappa=0.0, binary_search_steps=3,
                                 max_iterations=60, initial_const=1.0,
                                 lr=5e-2)
        result = attack.attack(x0, y0)
        if result.success.any():
            # By construction: the reformed prediction is wrong.
            reformed_preds = logits_of(pipeline,
                                       result.x_adv[result.success]).argmax(1)
            assert (reformed_preds != y0[result.success]).all()


class TestAveragedModel:
    def test_weight_extremes(self, tiny_classifier, tiny_autoencoder,
                             tiny_splits):
        x = Tensor(tiny_splits.test.x[:3])
        raw_only = AveragedModel(tiny_autoencoder, tiny_classifier,
                                 weight_reformed=0.0)
        np.testing.assert_allclose(raw_only(x).data,
                                   tiny_classifier(x).data, rtol=1e-6)
        ref_only = AveragedModel(tiny_autoencoder, tiny_classifier,
                                 weight_reformed=1.0)
        manual = tiny_classifier(tiny_autoencoder(x)).data
        np.testing.assert_allclose(ref_only(x).data, manual, rtol=1e-6)

    def test_invalid_weight(self, tiny_classifier, tiny_autoencoder):
        with pytest.raises(ValueError):
            AveragedModel(tiny_autoencoder, tiny_classifier,
                          weight_reformed=1.5)


class TestGrayboxGradients:
    """Finite-difference checks of the surrogate models' input gradients.

    Uses tiny smooth Dense+Tanh stand-ins rather than the session
    fixtures: central differences need smooth ops (no ReLU kinks) and
    few enough elements to stay fast.
    """

    def _models(self):
        rng = np.random.default_rng(5)
        autoencoder = Sequential(Dense(6, 5, rng=rng), Tanh(),
                                 Dense(5, 6, rng=rng), Sigmoid())
        classifier = Sequential(Dense(6, 4, rng=rng), Tanh(),
                                Dense(4, 3, rng=rng))
        return autoencoder, classifier

    def _x(self):
        return np.random.default_rng(11).uniform(0.2, 0.8, size=(3, 6))

    def test_reformed_model_gradcheck(self):
        autoencoder, classifier = self._models()
        model = ReformedModel(autoencoder, classifier)
        check_gradients(model, self._x())

    @pytest.mark.parametrize("weight", [0.0, 0.5, 1.0])
    def test_averaged_model_gradcheck(self, weight):
        """Both blend extremes and the midpoint have exact input VJPs —
        at 0.0 no gradient may leak through the autoencoder branch, at
        1.0 none through the raw branch."""
        autoencoder, classifier = self._models()
        model = AveragedModel(autoencoder, classifier,
                              weight_reformed=weight)
        check_gradients(model, self._x())


class TestGrayboxFactory:
    def _magnet(self, tiny_classifier, tiny_autoencoder, with_reformer=True):
        det = ReconstructionDetector(tiny_autoencoder, norm=1)
        reformer = Reformer(tiny_autoencoder) if with_reformer else None
        return MagNet(tiny_classifier, [det], reformer)

    def test_reformed_mode(self, tiny_classifier, tiny_autoencoder):
        magnet = self._magnet(tiny_classifier, tiny_autoencoder)
        model = graybox_model(magnet, mode="reformed")
        assert isinstance(model, ReformedModel)

    def test_averaged_mode(self, tiny_classifier, tiny_autoencoder):
        magnet = self._magnet(tiny_classifier, tiny_autoencoder)
        model = graybox_model(magnet, mode="averaged")
        assert isinstance(model, AveragedModel)

    def test_invalid_mode(self, tiny_classifier, tiny_autoencoder):
        magnet = self._magnet(tiny_classifier, tiny_autoencoder)
        with pytest.raises(ValueError):
            graybox_model(magnet, mode="whitebox")

    def test_no_reformer_rejected(self, tiny_classifier, tiny_autoencoder):
        magnet = self._magnet(tiny_classifier, tiny_autoencoder,
                              with_reformer=False)
        with pytest.raises(ValueError):
            graybox_model(magnet)
