"""Tests for the extension attacks: PGD, MI-FGSM, JSMA."""

import numpy as np
import pytest

from repro.attacks import JSMA, MomentumFGSM, PGD, logits_of
from repro.attacks.pgd import _project_l2


@pytest.fixture(scope="module")
def seeds(tiny_classifier, tiny_splits):
    preds = logits_of(tiny_classifier, tiny_splits.test.x).argmax(1)
    idx = np.flatnonzero(preds == tiny_splits.test.y)[:8]
    return tiny_splits.test.x[idx], tiny_splits.test.y[idx]


class TestL2Projection:
    def test_inside_ball_unchanged(self, rng):
        delta = rng.standard_normal((2, 1, 3, 3)).astype(np.float32) * 0.01
        out = _project_l2(delta, 10.0)
        np.testing.assert_allclose(out, delta, rtol=1e-6)

    def test_outside_ball_projected_to_radius(self, rng):
        delta = rng.standard_normal((3, 1, 4, 4)).astype(np.float32) * 5
        out = _project_l2(delta, 1.0)
        norms = np.sqrt((out.reshape(3, -1) ** 2).sum(axis=1))
        np.testing.assert_allclose(norms, 1.0, rtol=1e-5)

    def test_direction_preserved(self, rng):
        delta = rng.standard_normal((1, 1, 2, 2)).astype(np.float32) * 5
        out = _project_l2(delta, 1.0)
        cos = (delta.ravel() @ out.ravel()) / (
            np.linalg.norm(delta) * np.linalg.norm(out))
        assert cos == pytest.approx(1.0, abs=1e-5)


class TestPGD:
    def test_linf_ball_respected(self, tiny_classifier, seeds):
        x0, y0 = seeds
        result = PGD(tiny_classifier, epsilon=0.1, step_size=0.02,
                     steps=10).attack(x0, y0)
        assert result.linf.max() <= 0.1 + 1e-5

    def test_l2_ball_respected(self, tiny_classifier, seeds):
        x0, y0 = seeds
        result = PGD(tiny_classifier, epsilon=2.0, step_size=0.5,
                     steps=10, norm="l2").attack(x0, y0)
        assert result.l2.max() <= 2.0 + 1e-4

    def test_succeeds_with_budget(self, tiny_classifier, seeds):
        x0, y0 = seeds
        result = PGD(tiny_classifier, epsilon=0.25, step_size=0.05,
                     steps=15).attack(x0, y0)
        assert result.success_rate > 0.5

    def test_random_start_seeded(self, tiny_classifier, seeds):
        x0, y0 = seeds
        a = PGD(tiny_classifier, epsilon=0.1, steps=3, seed=9).attack(x0, y0)
        b = PGD(tiny_classifier, epsilon=0.1, steps=3, seed=9).attack(x0, y0)
        np.testing.assert_allclose(a.x_adv, b.x_adv)

    def test_no_random_start_deterministic_from_x0(self, tiny_classifier,
                                                   seeds):
        x0, y0 = seeds
        a = PGD(tiny_classifier, epsilon=0.1, steps=3,
                random_start=False).attack(x0, y0)
        b = PGD(tiny_classifier, epsilon=0.1, steps=3,
                random_start=False).attack(x0, y0)
        np.testing.assert_allclose(a.x_adv, b.x_adv)

    def test_box_constraint(self, tiny_classifier, seeds):
        x0, y0 = seeds
        result = PGD(tiny_classifier, epsilon=0.3, steps=5).attack(x0, y0)
        assert result.x_adv.min() >= 0.0 and result.x_adv.max() <= 1.0

    def test_validation(self, tiny_classifier):
        with pytest.raises(ValueError):
            PGD(tiny_classifier, norm="l1")
        with pytest.raises(ValueError):
            PGD(tiny_classifier, steps=0)


class TestMomentumFGSM:
    def test_eps_ball_respected(self, tiny_classifier, seeds):
        x0, y0 = seeds
        result = MomentumFGSM(tiny_classifier, epsilon=0.12,
                              steps=8).attack(x0, y0)
        assert result.linf.max() <= 0.12 + 1e-5

    def test_succeeds_with_budget(self, tiny_classifier, seeds):
        x0, y0 = seeds
        result = MomentumFGSM(tiny_classifier, epsilon=0.25,
                              steps=10).attack(x0, y0)
        assert result.success_rate > 0.5

    def test_default_step_size(self, tiny_classifier):
        attack = MomentumFGSM(tiny_classifier, epsilon=0.2, steps=10)
        assert attack.step_size == pytest.approx(0.02)

    def test_validation(self, tiny_classifier):
        with pytest.raises(ValueError):
            MomentumFGSM(tiny_classifier, decay=-1.0)


class TestJSMA:
    def test_perturbations_sparse(self, tiny_classifier, seeds):
        x0, y0 = seeds
        result = JSMA(tiny_classifier, theta=1.0,
                      max_fraction=0.05).attack(x0, y0)
        n_pixels = np.prod(x0.shape[1:])
        if result.success.any():
            # L0 bounded by the pixel budget.
            assert result.l0[result.success].max() <= 0.05 * n_pixels + 1

    def test_perturbations_only_increase_pixels(self, tiny_classifier, seeds):
        x0, y0 = seeds
        result = JSMA(tiny_classifier, theta=0.5,
                      max_fraction=0.05).attack(x0, y0)
        delta = result.x_adv - x0
        assert delta.min() >= -1e-6  # increasing-only variant

    def test_some_success_with_generous_budget(self, tiny_classifier, seeds):
        x0, y0 = seeds
        result = JSMA(tiny_classifier, theta=1.0,
                      max_fraction=0.15).attack(x0, y0)
        assert result.success_rate > 0.3

    def test_box_constraint(self, tiny_classifier, seeds):
        x0, y0 = seeds
        result = JSMA(tiny_classifier, theta=1.0,
                      max_fraction=0.03).attack(x0, y0)
        assert result.x_adv.max() <= 1.0 + 1e-6

    def test_validation(self, tiny_classifier):
        with pytest.raises(ValueError):
            JSMA(tiny_classifier, max_fraction=0.0)
        with pytest.raises(ValueError):
            JSMA(tiny_classifier, theta=-0.5)
