"""Unit tests for the attack-gradient helpers."""

import numpy as np
import pytest

from repro.attacks.gradients import (
    attack_margin,
    class_logit_grads,
    cross_entropy_grad,
    is_successful,
    logits_of,
    margin_loss_and_grad,
)
from repro.nn import Dense, ReLU, Sequential, Tensor


@pytest.fixture
def small_model(rng):
    return Sequential(Dense(8, 16, rng=rng), ReLU(), Dense(16, 4, rng=rng))


def _inputs(rng, n=5, d=8):
    return rng.random((n, 1, 2, 4)).astype(np.float32).reshape(n, d)


class _FlattenWrap:
    """Adapt a dense model to NCHW inputs for the helpers that expect 4D."""

    def __init__(self, model):
        self.model = model

    def __call__(self, x):
        if isinstance(x, Tensor):
            return self.model(x.reshape((x.shape[0], -1)))
        return self.model(x.reshape(x.shape[0], -1))


class TestAttackMargin:
    def test_untargeted_sign(self):
        logits = np.array([[5.0, 1.0, 0.0], [0.0, 3.0, 9.0]])
        labels = np.array([0, 2])
        margin = attack_margin(logits, labels)
        # correctly classified → negative margin
        np.testing.assert_allclose(margin, [-4.0, -6.0])

    def test_untargeted_positive_when_misclassified(self):
        logits = np.array([[1.0, 5.0, 0.0]])
        margin = attack_margin(logits, np.array([0]))
        np.testing.assert_allclose(margin, [4.0])

    def test_targeted_sign(self):
        logits = np.array([[5.0, 1.0, 0.0]])
        margin = attack_margin(logits, np.array([1]), targeted=True)
        np.testing.assert_allclose(margin, [-4.0])

    def test_is_successful_at_kappa(self):
        logits = np.array([[0.0, 10.0], [0.0, 4.9]])
        labels = np.array([0, 0])
        assert is_successful(logits, labels, kappa=5.0).tolist() == [True, False]

    def test_is_successful_tolerance_at_boundary(self):
        logits = np.array([[0.0, 5.0]])
        assert is_successful(logits, np.array([0]), kappa=5.0).tolist() == [True]


class TestMarginLossAndGrad:
    def test_loss_values_match_margin(self, rng, small_model):
        model = _FlattenWrap(small_model)
        x = rng.random((6, 1, 2, 4)).astype(np.float32)
        labels = np.array([0, 1, 2, 3, 0, 1])
        kappa = 2.0
        f_vals, grad, logits = margin_loss_and_grad(model, x, labels, kappa)
        margin = attack_margin(logits, labels)
        np.testing.assert_allclose(f_vals, np.maximum(-margin, -kappa),
                                   rtol=1e-5)
        assert grad.shape == x.shape

    def test_gradient_zero_on_hinge_floor(self, rng, small_model):
        model = _FlattenWrap(small_model)
        x = rng.random((4, 1, 2, 4)).astype(np.float32)
        labels = np.array([0, 1, 2, 3])
        # Enormous kappa: hinge never saturates, all rows active.
        _, grad_active, _ = margin_loss_and_grad(model, x, labels, 1e9)
        assert np.abs(grad_active).sum() > 0
        # kappa = 0 but flip labels so the "attack" is already successful
        # for rows the model misclassifies.
        logits = logits_of(model, x)
        wrong = logits.argmax(1)  # treat predictions as untargeted labels
        f_vals, grad, _ = margin_loss_and_grad(model, x, wrong, 1e9)
        assert np.abs(grad).sum() > 0

    def test_finite_difference_agreement(self, rng, small_model):
        model = _FlattenWrap(small_model)
        x = rng.random((3, 1, 2, 4)).astype(np.float64).astype(np.float32)
        labels = np.array([1, 2, 0])
        kappa = 100.0  # keep the hinge active everywhere
        f0, grad, _ = margin_loss_and_grad(model, x, labels, kappa)
        eps = 1e-3
        for _ in range(10):
            i = tuple(rng.integers(0, s) for s in x.shape)
            xp = x.copy()
            xp[i] += eps
            fp, _, _ = margin_loss_and_grad(model, xp, labels, kappa)
            xm = x.copy()
            xm[i] -= eps
            fm, _, _ = margin_loss_and_grad(model, xm, labels, kappa)
            numeric = (fp[i[0]] - fm[i[0]]) / (2 * eps)
            np.testing.assert_allclose(grad[i], numeric, atol=2e-2, rtol=5e-2)

    def test_targeted_gradient_direction(self, rng, small_model):
        """A small step along -grad should increase the target logit margin."""
        model = _FlattenWrap(small_model)
        x = rng.random((4, 1, 2, 4)).astype(np.float32)
        logits = logits_of(model, x)
        targets = (logits.argmax(1) + 1) % 4
        f0, grad, _ = margin_loss_and_grad(model, x, targets, 0.0,
                                           targeted=True)
        x_new = x - 0.05 * grad
        f1, _, _ = margin_loss_and_grad(model, x_new, targets, 0.0,
                                        targeted=True)
        assert f1.sum() <= f0.sum() + 1e-6


class TestCrossEntropyGrad:
    def test_loss_values(self, rng, small_model):
        model = _FlattenWrap(small_model)
        x = rng.random((5, 1, 2, 4)).astype(np.float32)
        labels = np.array([0, 1, 2, 3, 0])
        loss, grad = cross_entropy_grad(model, x, labels)
        assert loss.shape == (5,)
        assert (loss > 0).all()
        assert grad.shape == x.shape

    def test_ascending_gradient_increases_loss(self, rng, small_model):
        model = _FlattenWrap(small_model)
        x = rng.random((5, 1, 2, 4)).astype(np.float32)
        labels = np.array([0, 1, 2, 3, 0])
        loss0, grad = cross_entropy_grad(model, x, labels)
        loss1, _ = cross_entropy_grad(model, x + 0.05 * np.sign(grad), labels)
        assert loss1.mean() > loss0.mean()


class TestClassLogitGrads:
    def test_shapes(self, rng, small_model):
        model = _FlattenWrap(small_model)
        x = rng.random((3, 1, 2, 4)).astype(np.float32)
        logits, grads = class_logit_grads(model, x)
        assert logits.shape == (3, 4)
        assert grads.shape == (4, 3, 1, 2, 4)

    def test_rows_match_margin_grad(self, rng, small_model):
        """grad(z_label) - grad(z_other) equals the hinge gradient (active)."""
        model = _FlattenWrap(small_model)
        x = rng.random((2, 1, 2, 4)).astype(np.float32)
        logits, grads = class_logit_grads(model, x)
        labels = logits.argmax(1)
        f, hinge_grad, _ = margin_loss_and_grad(model, x, labels, 1e9)
        masked = logits.copy()
        masked[np.arange(2), labels] = -np.inf
        j = masked.argmax(1)
        manual = (grads[labels, np.arange(2)] - grads[j, np.arange(2)])
        np.testing.assert_allclose(hinge_grad, manual, rtol=1e-4, atol=1e-6)
