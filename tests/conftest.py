"""Shared fixtures for the test suite.

Expensive artifacts (tiny trained models) are session-scoped and cached
in a per-session temp directory so the suite stays fast and hermetic —
tests never touch the repo-level .repro_cache.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import load_digit_splits
from repro.models import AutoencoderSpec, ClassifierSpec, ModelZoo
from repro.utils.cache import DiskCache


@pytest.fixture
def rng():
    return np.random.default_rng(0)


@pytest.fixture(scope="session")
def test_cache(tmp_path_factory):
    return DiskCache(tmp_path_factory.mktemp("repro_cache"))


@pytest.fixture(scope="session")
def tiny_splits():
    """A small SyntheticDigits split set shared across the session."""
    return load_digit_splits(n_train=700, n_val=150, n_test=300, seed=7)


@pytest.fixture(scope="session")
def tiny_zoo(tiny_splits, test_cache):
    return ModelZoo(tiny_splits, cache=test_cache)


@pytest.fixture(scope="session")
def tiny_classifier_spec():
    return ClassifierSpec(dataset="digits", epochs=6)


@pytest.fixture(scope="session")
def tiny_classifier(tiny_zoo, tiny_classifier_spec):
    """A small digits classifier trained once per session (~10 s)."""
    return tiny_zoo.classifier(tiny_classifier_spec)


@pytest.fixture(scope="session")
def tiny_ae_spec():
    return AutoencoderSpec(dataset="digits", kind="deep", width=3, epochs=25)


@pytest.fixture(scope="session")
def tiny_autoencoder(tiny_zoo, tiny_ae_spec):
    """A small digits autoencoder trained once per session."""
    return tiny_zoo.autoencoder(tiny_ae_spec)
