"""Detector tests against a real trained autoencoder (session fixture)."""

import numpy as np
import pytest

from repro.defenses import JSDDetector, ReconstructionDetector


@pytest.fixture(scope="module")
def calibrated_recon(tiny_autoencoder, tiny_splits):
    det = ReconstructionDetector(tiny_autoencoder, norm=1)
    det.calibrate(tiny_splits.val.x, fpr=0.02)
    return det


class TestReconstructionDetectorIntegration:
    def test_clean_data_mostly_passes(self, calibrated_recon, tiny_splits):
        flags = calibrated_recon.flags(tiny_splits.test.x[:200])
        assert flags.mean() < 0.15

    def test_heavy_noise_is_flagged(self, calibrated_recon, tiny_splits,
                                    rng):
        x = tiny_splits.test.x[:50]
        noisy = np.clip(x + rng.normal(0, 0.35, x.shape), 0, 1
                        ).astype(np.float32)
        assert calibrated_recon.flags(noisy).mean() > 0.8

    def test_uniform_random_images_flagged(self, calibrated_recon, rng):
        junk = rng.random((30, 1, 28, 28)).astype(np.float32)
        assert calibrated_recon.flags(junk).mean() > 0.9

    def test_scores_increase_with_noise_level(self, calibrated_recon,
                                              tiny_splits, rng):
        x = tiny_splits.test.x[:50]
        scores = []
        for level in (0.0, 0.1, 0.3):
            noisy = np.clip(x + rng.normal(0, level, x.shape), 0, 1
                            ).astype(np.float32)
            scores.append(calibrated_recon.score(noisy).mean())
        assert scores[0] < scores[1] < scores[2]


class TestJSDDetectorIntegration:
    def test_clean_data_low_divergence(self, tiny_autoencoder,
                                       tiny_classifier, tiny_splits):
        det = JSDDetector(tiny_autoencoder, tiny_classifier, temperature=10)
        det.calibrate(tiny_splits.val.x, fpr=0.02)
        flags = det.flags(tiny_splits.test.x[:200])
        assert flags.mean() < 0.2

    def test_noise_raises_divergence(self, tiny_autoencoder, tiny_classifier,
                                     tiny_splits, rng):
        det = JSDDetector(tiny_autoencoder, tiny_classifier, temperature=10)
        x = tiny_splits.test.x[:50]
        noisy = np.clip(x + rng.normal(0, 0.3, x.shape), 0, 1
                        ).astype(np.float32)
        assert det.score(noisy).mean() > det.score(x).mean()
