"""Tests for the MagNet variant factory against real (tiny) models."""

import numpy as np
import pytest

from repro.defenses import (
    CIFAR_VARIANTS,
    JSDDetector,
    MNIST_VARIANTS,
    ReconstructionDetector,
    VARIANT_LABELS,
    build_magnet,
)


class TestVariantCatalog:
    def test_variant_names(self):
        assert MNIST_VARIANTS == ("default", "jsd", "wide", "wide_jsd")
        assert CIFAR_VARIANTS == ("default", "wide")

    def test_labels_cover_variants(self):
        for v in MNIST_VARIANTS + CIFAR_VARIANTS:
            assert v in VARIANT_LABELS

    def test_unknown_variant_rejected(self, tiny_zoo):
        with pytest.raises(KeyError):
            build_magnet(tiny_zoo, "digits", "ultra")

    def test_unknown_dataset_rejected(self, tiny_zoo):
        with pytest.raises(KeyError):
            build_magnet(tiny_zoo, "speech", "default")

    def test_cifar_variant_names_enforced(self, tiny_zoo):
        with pytest.raises(KeyError):
            build_magnet(tiny_zoo, "objects", "jsd")


class TestDigitsVariants:
    @pytest.fixture(scope="class")
    def default_magnet(self, tiny_zoo):
        return build_magnet(tiny_zoo, "digits", "default", ae_epochs=8,
                            fpr_total=0.01)

    def test_default_composition(self, default_magnet):
        dets = default_magnet.detectors
        assert len(dets) == 2
        assert isinstance(dets[0], ReconstructionDetector)
        assert dets[0].norm == 1
        assert isinstance(dets[1], ReconstructionDetector)
        assert dets[1].norm == 2
        assert default_magnet.reformer is not None

    def test_detectors_calibrated(self, default_magnet):
        assert all(d.threshold is not None for d in default_magnet.detectors)

    def test_detector_i_and_reformer_share_autoencoder(self, default_magnet):
        assert (default_magnet.detectors[0].autoencoder
                is default_magnet.reformer.autoencoder)

    def test_detector_ii_uses_different_autoencoder(self, default_magnet):
        assert (default_magnet.detectors[0].autoencoder
                is not default_magnet.detectors[1].autoencoder)

    def test_jsd_variant_adds_two_jsd_detectors(self, tiny_zoo):
        magnet = build_magnet(tiny_zoo, "digits", "jsd", ae_epochs=8,
                              fpr_total=0.01)
        jsd = [d for d in magnet.detectors if isinstance(d, JSDDetector)]
        assert len(jsd) == 2
        assert sorted(d.temperature for d in jsd) == [10.0, 40.0]

    def test_wide_variant_uses_wider_ae(self, tiny_zoo, default_magnet):
        wide = build_magnet(tiny_zoo, "digits", "wide", wide_width=6,
                            ae_epochs=8, fpr_total=0.01)
        wide_params = sum(p.size for p in
                          wide.reformer.autoencoder.parameters())
        thin_params = sum(p.size for p in
                          default_magnet.reformer.autoencoder.parameters())
        assert wide_params > thin_params

    def test_classifier_override_used_in_jsd(self, tiny_zoo, tiny_classifier):
        from repro.models.classifiers import ScaledLogits

        scaled = ScaledLogits(tiny_classifier, 4.0)
        magnet = build_magnet(tiny_zoo, "digits", "jsd", classifier=scaled,
                              ae_epochs=8, fpr_total=0.01)
        jsd = [d for d in magnet.detectors if isinstance(d, JSDDetector)]
        assert all(d.classifier is scaled for d in jsd)
        assert magnet.classifier is scaled

    def test_mae_loss_changes_name(self, tiny_zoo):
        magnet = build_magnet(tiny_zoo, "digits", "default", ae_loss="mae",
                              ae_epochs=4, fpr_total=0.01)
        assert "mae" in magnet.name
