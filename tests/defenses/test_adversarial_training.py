"""Tests for adversarial training."""

import numpy as np
import pytest

from repro.attacks import FGSM, logits_of
from repro.defenses.adversarial_training import (
    AdversarialTrainer,
    adversarially_train_classifier,
)
from repro.models import build_digit_classifier
from repro.nn import accuracy


@pytest.fixture(scope="module")
def at_model(tiny_splits):
    """A small adversarially trained classifier (trained once per session)."""
    return adversarially_train_classifier(
        lambda: build_digit_classifier(seed=2),
        tiny_splits.train.x, tiny_splits.train.y,
        attack_factory=lambda m: FGSM(m, epsilon=0.1),
        epochs=4, batch_size=64, adversarial_fraction=0.5, lr=1e-3,
        seed=2)


@pytest.fixture(scope="module")
def plain_model(tiny_splits):
    """The same architecture trained without adversarial examples."""
    return adversarially_train_classifier(
        lambda: build_digit_classifier(seed=2),
        tiny_splits.train.x, tiny_splits.train.y,
        attack_factory=lambda m: FGSM(m, epsilon=0.1),
        epochs=4, batch_size=64, adversarial_fraction=0.0, lr=1e-3,
        seed=2)


class TestAdversarialTrainer:
    def test_clean_accuracy_maintained(self, at_model, tiny_splits):
        acc = accuracy(at_model, tiny_splits.test.x, tiny_splits.test.y)
        assert acc > 0.8

    def test_more_robust_than_plain_training(self, at_model, plain_model,
                                             tiny_splits):
        """The point of AT: higher accuracy under the training attack."""
        preds_at = logits_of(at_model, tiny_splits.test.x).argmax(1)
        preds_pl = logits_of(plain_model, tiny_splits.test.x).argmax(1)
        both_ok = (preds_at == tiny_splits.test.y) & \
                  (preds_pl == tiny_splits.test.y)
        idx = np.flatnonzero(both_ok)[:40]
        x0, y0 = tiny_splits.test.x[idx], tiny_splits.test.y[idx]
        asr_at = FGSM(at_model, epsilon=0.1).attack(x0, y0).success_rate
        asr_plain = FGSM(plain_model, epsilon=0.1).attack(x0, y0).success_rate
        assert asr_at <= asr_plain + 0.05, (
            f"AT model should resist its training attack better "
            f"(AT ASR {asr_at:.2f} vs plain {asr_plain:.2f})")

    def test_zero_fraction_is_plain_training(self, tiny_splits):
        model = build_digit_classifier(seed=9)
        trainer = AdversarialTrainer(
            model, lambda m: FGSM(m, epsilon=0.1),
            adversarial_fraction=0.0, lr=1e-3)
        history = trainer.fit(tiny_splits.train.x[:128],
                              tiny_splits.train.y[:128],
                              epochs=1, batch_size=32, verbose=False)
        assert len(history.epochs) == 1

    def test_model_left_in_eval_mode(self, at_model):
        assert not at_model.training

    def test_history_records_val_accuracy(self, tiny_splits):
        model = build_digit_classifier(seed=5)
        trainer = AdversarialTrainer(
            model, lambda m: FGSM(m, epsilon=0.1),
            adversarial_fraction=0.25, lr=1e-3)
        history = trainer.fit(tiny_splits.train.x[:128],
                              tiny_splits.train.y[:128],
                              epochs=1, batch_size=64,
                              x_val=tiny_splits.val.x[:40],
                              y_val=tiny_splits.val.y[:40], verbose=False)
        assert history.epochs[0].val_accuracy is not None

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            AdversarialTrainer(build_digit_classifier(),
                               lambda m: FGSM(m, epsilon=0.1),
                               adversarial_fraction=1.5)

    def test_invalid_factory(self):
        with pytest.raises(TypeError):
            AdversarialTrainer(build_digit_classifier(), lambda m: object())
