"""Tests for the feature-squeezing defense."""

import numpy as np
import pytest

from repro.defenses.squeezing import (
    FeatureSqueezing,
    SqueezeDetector,
    Squeezer,
    bit_depth_reduction,
    default_squeezers,
    median_smoothing,
)
from repro.nn import Module, Tensor
from repro.nn.autograd import concatenate


class TestBitDepthReduction:
    def test_one_bit_binarizes(self):
        x = np.array([[[[0.2, 0.8]]]], dtype=np.float32)
        out = bit_depth_reduction(x, 1)
        np.testing.assert_allclose(out, [[[[0.0, 1.0]]]])

    def test_eight_bits_nearly_identity(self, rng):
        x = rng.random((2, 1, 4, 4)).astype(np.float32)
        out = bit_depth_reduction(x, 8)
        assert np.abs(out - x).max() <= 1.0 / 255.0 + 1e-6

    def test_levels_count(self):
        x = np.linspace(0, 1, 101, dtype=np.float32).reshape(1, 1, 1, 101)
        out = bit_depth_reduction(x, 2)
        assert len(np.unique(out)) <= 4

    def test_idempotent(self, rng):
        x = rng.random((1, 1, 4, 4)).astype(np.float32)
        once = bit_depth_reduction(x, 3)
        twice = bit_depth_reduction(once, 3)
        np.testing.assert_allclose(once, twice)

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            bit_depth_reduction(np.zeros((1, 1, 2, 2)), 0)
        with pytest.raises(ValueError):
            bit_depth_reduction(np.zeros((1, 1, 2, 2)), 9)


class TestMedianSmoothing:
    def test_removes_salt_noise(self):
        x = np.zeros((1, 1, 8, 8), dtype=np.float32)
        x[0, 0, 4, 4] = 1.0  # isolated spike
        out = median_smoothing(x, 3)
        assert out[0, 0, 4, 4] == 0.0

    def test_preserves_constant_regions(self):
        x = np.full((1, 2, 6, 6), 0.5, dtype=np.float32)
        out = median_smoothing(x, 2)
        np.testing.assert_allclose(out, 0.5)

    def test_channels_independent(self):
        x = np.zeros((1, 2, 6, 6), dtype=np.float32)
        x[0, 0] = 1.0
        out = median_smoothing(x, 3)
        np.testing.assert_allclose(out[0, 0], 1.0)
        np.testing.assert_allclose(out[0, 1], 0.0)

    def test_invalid_kernel(self):
        with pytest.raises(ValueError):
            median_smoothing(np.zeros((1, 1, 4, 4)), 1)


class _MeanClassifier(Module):
    """Logits linear in the mean pixel — sensitive to smoothing/quantizing."""

    def forward(self, x):
        m = x.reshape((x.shape[0], -1)).mean(axis=1, keepdims=True)
        return concatenate([(0.5 - m) * 30.0, (m - 0.5) * 30.0], axis=1)


class TestSqueezeDetector:
    def test_scores_zero_when_squeezing_is_noop(self, rng):
        det = SqueezeDetector(_MeanClassifier(),
                              [Squeezer("id", lambda x: x)])
        x = rng.random((5, 1, 4, 4)).astype(np.float32)
        np.testing.assert_allclose(det.score(x), 0.0, atol=1e-6)

    def test_scores_positive_when_squeezing_changes_prediction(self):
        # bit-1 squeezing moves mean pixels near the decision boundary a lot
        det = SqueezeDetector(_MeanClassifier(),
                              [Squeezer("bit1", lambda x: bit_depth_reduction(x, 1))])
        x = np.full((3, 1, 4, 4), 0.55, dtype=np.float32)
        assert (det.score(x) > 0.05).all()

    def test_max_over_squeezers(self):
        strong = Squeezer("bit1", lambda x: bit_depth_reduction(x, 1))
        weak = Squeezer("id", lambda x: x)
        x = np.full((3, 1, 4, 4), 0.55, dtype=np.float32)
        both = SqueezeDetector(_MeanClassifier(), [weak, strong]).score(x)
        only_strong = SqueezeDetector(_MeanClassifier(), [strong]).score(x)
        np.testing.assert_allclose(both, only_strong, rtol=1e-6)

    def test_requires_squeezers(self):
        with pytest.raises(ValueError):
            SqueezeDetector(_MeanClassifier(), [])


class TestFeatureSqueezingPipeline:
    def test_default_squeezers_per_dataset(self):
        assert len(default_squeezers("digits")) == 2
        assert len(default_squeezers("objects")) == 3

    def test_calibrate_then_detect(self, rng):
        fs = FeatureSqueezing(_MeanClassifier(), dataset="digits")
        x_val = rng.uniform(0.0, 0.3, (100, 1, 4, 4)).astype(np.float32)
        fs.calibrate(x_val, fpr=0.05)
        # boundary-straddling inputs have high squeeze distance
        x_sus = np.full((5, 1, 4, 4), 0.52, dtype=np.float32)
        assert fs.detect(x_sus).mean() >= 0.8

    def test_asr_complements_accuracy(self, rng):
        fs = FeatureSqueezing(_MeanClassifier(), dataset="digits")
        x_val = rng.uniform(0.0, 0.3, (50, 1, 4, 4)).astype(np.float32)
        fs.calibrate(x_val, fpr=0.1)
        x = rng.random((10, 1, 4, 4)).astype(np.float32)
        y = np.zeros(10, dtype=np.int64)
        assert fs.attack_success_rate(x, y) == pytest.approx(
            1.0 - fs.defense_accuracy(x, y))

    def test_clean_accuracy_counts_fps_against(self, rng):
        fs = FeatureSqueezing(_MeanClassifier(), dataset="digits")
        x_val = rng.uniform(0.0, 0.3, (50, 1, 4, 4)).astype(np.float32)
        fs.calibrate(x_val, fpr=0.1)
        # class 0 = dark images; these are classified right and pass
        x = rng.uniform(0.0, 0.2, (10, 1, 4, 4)).astype(np.float32)
        acc = fs.clean_accuracy(x, np.zeros(10, dtype=np.int64))
        assert acc > 0.5

    def test_repr(self):
        fs = FeatureSqueezing(_MeanClassifier(), dataset="digits")
        assert "bit1" in repr(fs)
