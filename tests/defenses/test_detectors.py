"""Unit tests for MagNet's detectors."""

import numpy as np
import pytest

from repro.defenses.detectors import (
    Detector,
    JSDDetector,
    ReconstructionDetector,
    jensen_shannon_divergence,
)
from repro.nn import Module, Tensor


class _IdentityAE(Module):
    """AE stub that reproduces its input exactly (zero reconstruction error)."""

    def forward(self, x):
        return x


class _ConstantAE(Module):
    """AE stub that always outputs a constant image."""

    def __init__(self, value=0.5):
        super().__init__()
        self.value = value

    def forward(self, x):
        return Tensor(np.full_like(x.data, self.value))


class _LinearLogits(Module):
    """Classifier stub: logits are linear in the mean pixel value."""

    def forward(self, x):
        m = x.reshape((x.shape[0], -1)).mean(axis=1, keepdims=True)
        zero = m * 0.0
        from repro.nn.autograd import concatenate
        return concatenate([m * 10.0, zero], axis=1)


class TestJensenShannonDivergence:
    def test_identical_distributions_zero(self):
        p = np.array([[0.3, 0.7], [0.5, 0.5]])
        np.testing.assert_allclose(jensen_shannon_divergence(p, p), 0.0,
                                   atol=1e-10)

    def test_symmetry(self, rng):
        p = rng.random((5, 4))
        p /= p.sum(1, keepdims=True)
        q = rng.random((5, 4))
        q /= q.sum(1, keepdims=True)
        np.testing.assert_allclose(jensen_shannon_divergence(p, q),
                                   jensen_shannon_divergence(q, p), rtol=1e-9)

    def test_upper_bound_ln2(self):
        p = np.array([[1.0, 0.0]])
        q = np.array([[0.0, 1.0]])
        out = jensen_shannon_divergence(p, q)
        assert out[0] == pytest.approx(np.log(2), rel=1e-6)

    def test_nonnegative(self, rng):
        p = rng.random((20, 10))
        p /= p.sum(1, keepdims=True)
        q = rng.random((20, 10))
        q /= q.sum(1, keepdims=True)
        assert (jensen_shannon_divergence(p, q) >= 0).all()


class TestReconstructionDetector:
    def test_identity_ae_scores_zero(self, rng):
        det = ReconstructionDetector(_IdentityAE(), norm=1)
        x = rng.random((4, 1, 4, 4)).astype(np.float32)
        np.testing.assert_allclose(det.score(x), 0.0, atol=1e-7)

    def test_l1_score_value(self):
        det = ReconstructionDetector(_ConstantAE(0.0), norm=1)
        x = np.full((2, 1, 2, 2), 0.25, dtype=np.float32)
        np.testing.assert_allclose(det.score(x), 0.25, rtol=1e-6)

    def test_l2_score_value(self):
        det = ReconstructionDetector(_ConstantAE(0.0), norm=2)
        x = np.full((2, 1, 2, 2), 0.25, dtype=np.float32)
        np.testing.assert_allclose(det.score(x), 0.25, rtol=1e-6)

    def test_l2_emphasizes_spikes(self):
        det1 = ReconstructionDetector(_IdentityAE(), norm=1)
        det2 = ReconstructionDetector(_ConstantAE(0.0), norm=2)
        spread = np.full((1, 1, 4, 4), 0.1, dtype=np.float32)
        spike = np.zeros((1, 1, 4, 4), dtype=np.float32)
        spike[0, 0, 0, 0] = 1.0  # same L1? 16*0.1=1.6 vs 1.0 — use L2 compare
        s_spread = det2.score(spread)[0]
        s_spike = det2.score(spike)[0]
        # spike has smaller L1 (1.0 < 1.6) but larger L2 score
        assert s_spike > s_spread

    def test_invalid_norm_rejected(self):
        with pytest.raises(ValueError):
            ReconstructionDetector(_IdentityAE(), norm=3)

    def test_calibrate_sets_threshold_at_quantile(self, rng):
        det = ReconstructionDetector(_ConstantAE(0.0), norm=1)
        x = rng.random((100, 1, 2, 2)).astype(np.float32)
        thr = det.calibrate(x, fpr=0.1)
        flags = det.flags(x)
        assert flags.mean() == pytest.approx(0.1, abs=0.03)
        assert det.threshold == thr

    def test_flags_without_calibration_raises(self, rng):
        det = ReconstructionDetector(_IdentityAE())
        with pytest.raises(RuntimeError):
            det.flags(rng.random((2, 1, 2, 2)).astype(np.float32))

    def test_invalid_fpr_rejected(self, rng):
        det = ReconstructionDetector(_IdentityAE())
        x = rng.random((10, 1, 2, 2)).astype(np.float32)
        with pytest.raises(ValueError):
            det.calibrate(x, fpr=0.0)
        with pytest.raises(ValueError):
            det.calibrate(x, fpr=1.0)

    def test_repr_mentions_threshold(self, rng):
        det = ReconstructionDetector(_IdentityAE())
        assert "uncalibrated" in repr(det)
        det.calibrate(rng.random((10, 1, 2, 2)).astype(np.float32) * 0 + 0.5,
                      fpr=0.5)
        assert "uncalibrated" not in repr(det)


class TestJSDDetector:
    def test_identity_ae_scores_zero(self, rng):
        det = JSDDetector(_IdentityAE(), _LinearLogits(), temperature=10)
        x = rng.random((4, 1, 2, 2)).astype(np.float32)
        np.testing.assert_allclose(det.score(x), 0.0, atol=1e-8)

    def test_disagreement_scores_positive(self):
        det = JSDDetector(_ConstantAE(0.0), _LinearLogits(), temperature=1.0)
        x = np.full((3, 1, 2, 2), 1.0, dtype=np.float32)
        assert (det.score(x) > 1e-4).all()

    def test_higher_temperature_softens_scores(self):
        x = np.full((3, 1, 2, 2), 1.0, dtype=np.float32)
        sharp = JSDDetector(_ConstantAE(0.0), _LinearLogits(),
                            temperature=1.0).score(x)
        soft = JSDDetector(_ConstantAE(0.0), _LinearLogits(),
                           temperature=40.0).score(x)
        assert (soft < sharp).all()

    def test_invalid_temperature(self):
        with pytest.raises(ValueError):
            JSDDetector(_IdentityAE(), _LinearLogits(), temperature=0.0)

    def test_name_encodes_temperature(self):
        det = JSDDetector(_IdentityAE(), _LinearLogits(), temperature=40)
        assert det.name == "jsd_T40"


class TestDetectorBase:
    def test_score_abstract(self, rng):
        with pytest.raises(NotImplementedError):
            Detector().score(rng.random((1, 1, 2, 2)))
