"""Tests for the detector-union defense ensemble."""

import numpy as np
import pytest

from repro.defenses.ensemble import DetectorUnion
from repro.nn import Module
from repro.nn.autograd import concatenate


class _StubDefense:
    """Minimal member: flags inputs whose mean exceeds ``cut``."""

    def __init__(self, cut, name="stub"):
        self.cut = cut
        self.name = name
        self.classifier = _MeanClassifier()

    def detect(self, x):
        return x.reshape(len(x), -1).mean(axis=1) > self.cut


class _MeanClassifier(Module):
    def forward(self, x):
        m = x.reshape((x.shape[0], -1)).mean(axis=1, keepdims=True)
        return concatenate([(0.5 - m) * 20.0, (m - 0.5) * 20.0], axis=1)


class _ReformingDefense(_StubDefense):
    def reform(self, x):
        return np.zeros_like(x)  # everything reforms to dark → class 0


def _batch(value, n=4):
    return np.full((n, 1, 2, 2), value, dtype=np.float32)


class TestDetectorUnion:
    def test_union_of_flags(self):
        union = DetectorUnion([_StubDefense(0.8), _StubDefense(0.3)])
        x = _batch(0.5)
        # second member fires (0.5 > 0.3), first doesn't.
        assert union.detect(x).all()

    def test_no_flags_when_all_quiet(self):
        union = DetectorUnion([_StubDefense(0.8), _StubDefense(0.9)])
        assert not union.detect(_batch(0.5)).any()

    def test_prediction_via_first_member_classifier(self):
        union = DetectorUnion([_StubDefense(0.99)])
        # bright inputs → class 1
        acc = union.defense_accuracy(_batch(0.9), np.ones(4, dtype=int))
        assert acc == 1.0

    def test_prediction_via_reformer_when_available(self):
        union = DetectorUnion([_ReformingDefense(0.99)])
        # reformer maps everything to dark → class 0
        acc = union.defense_accuracy(_batch(0.9), np.zeros(4, dtype=int))
        assert acc == 1.0

    def test_detected_counts_as_defended(self):
        union = DetectorUnion([_StubDefense(0.3)])
        # bright inputs detected → accuracy 1 regardless of label
        acc = union.defense_accuracy(_batch(0.9), np.zeros(4, dtype=int))
        assert acc == 1.0

    def test_clean_accuracy_penalizes_fps(self):
        union = DetectorUnion([_StubDefense(0.3)])
        # bright clean inputs get flagged → clean accuracy 0
        acc = union.clean_accuracy(_batch(0.9), np.ones(4, dtype=int))
        assert acc == 0.0

    def test_asr_complement(self):
        union = DetectorUnion([_StubDefense(0.7)])
        x = np.concatenate([_batch(0.9, 2), _batch(0.1, 2)])
        y = np.zeros(4, dtype=int)
        assert union.attack_success_rate(x, y) == pytest.approx(
            1.0 - union.defense_accuracy(x, y))

    def test_empty_members_rejected(self):
        with pytest.raises(ValueError):
            DetectorUnion([])

    def test_bad_predictor_rejected(self):
        union = DetectorUnion([_StubDefense(0.5)], predictor=object())
        with pytest.raises(TypeError):
            union.defense_accuracy(_batch(0.5), np.zeros(4, dtype=int))

    def test_repr_lists_members(self):
        union = DetectorUnion([_StubDefense(0.5, name="magnet"),
                               _StubDefense(0.6, name="squeeze")])
        assert "magnet" in repr(union)
        assert "squeeze" in repr(union)
