"""Unit tests for the MagNet pipeline and reformer."""

import numpy as np
import pytest

from repro.defenses.detectors import ReconstructionDetector
from repro.defenses.magnet import MagNet
from repro.defenses.reformer import Reformer
from repro.nn import Module, Tensor


class _IdentityAE(Module):
    def forward(self, x):
        return x


class _ConstantAE(Module):
    def __init__(self, value=0.5):
        super().__init__()
        self.value = value

    def forward(self, x):
        return Tensor(np.full_like(x.data, self.value))


class _OutOfRangeAE(Module):
    def forward(self, x):
        return x * 3.0 - 1.0


class _FixedClassifier(Module):
    """Classifies by mean pixel: > 0.5 → class 1, else class 0."""

    def forward(self, x):
        m = x.reshape((x.shape[0], -1)).mean(axis=1, keepdims=True)
        from repro.nn.autograd import concatenate
        return concatenate([(0.5 - m) * 20.0, (m - 0.5) * 20.0], axis=1)


def _bright(n):
    return np.full((n, 1, 2, 2), 0.9, dtype=np.float32)


def _dark(n):
    return np.full((n, 1, 2, 2), 0.1, dtype=np.float32)


class TestReformer:
    def test_applies_autoencoder(self):
        ref = Reformer(_ConstantAE(0.7))
        out = ref.reform(_dark(3))
        np.testing.assert_allclose(out, 0.7, rtol=1e-6)

    def test_clips_to_valid_box(self):
        ref = Reformer(_OutOfRangeAE())
        out = ref.reform(_bright(2))
        assert out.max() <= 1.0 and out.min() >= 0.0

    def test_callable_alias(self):
        ref = Reformer(_IdentityAE())
        x = _dark(2)
        np.testing.assert_allclose(ref(x), x)

    def test_output_dtype(self):
        out = Reformer(_IdentityAE()).reform(_dark(2).astype(np.float64))
        assert out.dtype == np.float32


def _calibrated_magnet(reformer_value=None):
    """MagNet with one reconstruction detector calibrated on dark images."""
    ae = _IdentityAE() if reformer_value is None else _ConstantAE(reformer_value)
    det = ReconstructionDetector(_ConstantAE(0.1), norm=1)
    magnet = MagNet(_FixedClassifier(), [det], Reformer(ae), name="test")
    # Clean data = dark images → scores ~0; threshold just above.
    rng = np.random.default_rng(0)
    x_val = np.clip(_dark(200) + rng.normal(0, 0.01, (200, 1, 2, 2)), 0, 1
                    ).astype(np.float32)
    magnet.calibrate(x_val, fpr_total=0.02)
    return magnet


class TestMagNetDetection:
    def test_clean_inputs_pass(self):
        magnet = _calibrated_magnet()
        assert magnet.detect(_dark(5)).mean() < 0.5

    def test_anomalous_inputs_flagged(self):
        magnet = _calibrated_magnet()
        assert magnet.detect(_bright(5)).all()

    def test_no_detectors_never_flags(self):
        magnet = MagNet(_FixedClassifier(), [], Reformer(_IdentityAE()))
        assert not magnet.detect(_bright(4)).any()

    def test_detector_flags_shape(self):
        magnet = _calibrated_magnet()
        flags = magnet.detector_flags(_dark(3))
        assert flags.shape == (1, 3)


class TestMagNetDecision:
    def test_decision_fields(self):
        magnet = _calibrated_magnet()
        decision = magnet.decide(_dark(4))
        assert decision.detected.shape == (4,)
        assert decision.labels_raw.shape == (4,)
        assert decision.labels_reformed.shape == (4,)
        assert len(decision) == 4

    def test_reformer_changes_labels(self):
        # Reformer maps everything to bright → class 1.
        magnet = _calibrated_magnet(reformer_value=0.9)
        decision = magnet.decide(_dark(3))
        np.testing.assert_array_equal(decision.labels_raw, 0)
        np.testing.assert_array_equal(decision.labels_reformed, 1)

    def test_no_reformer_means_identity(self):
        magnet = MagNet(_FixedClassifier(), [], None)
        x = _dark(3)
        np.testing.assert_allclose(magnet.reform(x), x)


class TestMagNetMetrics:
    def test_defense_accuracy_detected_counts(self):
        magnet = _calibrated_magnet()
        # Bright inputs: detected (recon error huge) → accuracy 1 even
        # though the classifier calls them class 1 and we claim label 0.
        acc = magnet.defense_accuracy(_bright(5), np.zeros(5, dtype=int))
        assert acc == 1.0

    def test_defense_accuracy_reformed_counts(self):
        magnet = _calibrated_magnet()
        # Dark inputs pass detection, reform(identity) keeps class 0.
        acc = magnet.defense_accuracy(_dark(5), np.zeros(5, dtype=int))
        assert acc == 1.0

    def test_asr_complements_accuracy(self):
        magnet = _calibrated_magnet()
        x = np.concatenate([_dark(3), _bright(3)])
        y = np.zeros(6, dtype=int)
        assert magnet.attack_success_rate(x, y) == pytest.approx(
            1.0 - magnet.defense_accuracy(x, y))

    def test_clean_accuracy_counts_false_positives_as_errors(self):
        magnet = _calibrated_magnet()
        # Bright inputs ARE class 1 (classifier is right), but the
        # detector flags them → clean accuracy 0.
        acc = magnet.clean_accuracy(_bright(4), np.ones(4, dtype=int))
        assert acc == 0.0

    def test_clean_accuracy_correct_and_passed(self):
        magnet = _calibrated_magnet()
        acc = magnet.clean_accuracy(_dark(4), np.zeros(4, dtype=int))
        assert acc == 1.0

    def test_repr(self):
        magnet = _calibrated_magnet()
        assert "recon_l1" in repr(magnet)


class TestDecideBatch:
    """decide_batch: the serving entry point mirrors decide() exactly."""

    def test_matches_decide_bitwise(self):
        magnet = _calibrated_magnet()
        x = np.concatenate([_dark(3), _bright(3)])
        offline = magnet.decide(x)
        batched = magnet.decide_batch(x)
        np.testing.assert_array_equal(batched.detected, offline.detected)
        np.testing.assert_array_equal(batched.labels_raw, offline.labels_raw)
        np.testing.assert_array_equal(batched.labels_reformed,
                                      offline.labels_reformed)
        np.testing.assert_array_equal(batched.detector_flags,
                                      offline.detector_flags)

    def test_materializes_scores_and_timings(self):
        magnet = _calibrated_magnet()
        decision = magnet.decide_batch(_dark(4))
        assert decision.detector_scores.shape == (1, 4)
        np.testing.assert_array_equal(
            decision.detector_flags,
            decision.detector_scores > magnet.detectors[0].threshold)
        assert set(decision.stage_s) == {"detect", "reform", "classify"}
        assert all(v >= 0 for v in decision.stage_s.values())

    def test_uncalibrated_detector_raises(self):
        det = ReconstructionDetector(_ConstantAE(0.1), norm=1)
        magnet = MagNet(_FixedClassifier(), [det], None, name="uncal")
        with pytest.raises(RuntimeError, match="calibrate"):
            magnet.decide_batch(_dark(2))


class TestEmptyBatch:
    """N=0 fast paths: the serving flush path must survive empty batches."""

    def _empty(self):
        return np.zeros((0, 1, 2, 2), dtype=np.float32)

    def test_decide_empty(self):
        decision = _calibrated_magnet().decide(self._empty())
        assert len(decision) == 0
        assert decision.detected.shape == (0,)
        assert decision.labels_raw.shape == (0,)
        assert decision.labels_reformed.shape == (0,)

    def test_decide_batch_empty(self):
        decision = _calibrated_magnet().decide_batch(self._empty())
        assert len(decision) == 0
        assert decision.detector_scores.shape == (1, 0)
        assert decision.detector_flags.shape == (1, 0)

    def test_accuracy_helpers_empty(self):
        magnet = _calibrated_magnet()
        y = np.zeros(0, dtype=int)
        assert magnet.defense_accuracy(self._empty(), y) == 0.0
        assert magnet.attack_success_rate(self._empty(), y) == 0.0
        assert magnet.clean_accuracy(self._empty(), y) == 0.0

    def test_detector_score_and_flags_empty(self):
        magnet = _calibrated_magnet()
        det = magnet.detectors[0]
        assert det.score(self._empty()).shape == (0,)
        assert det.flags(self._empty()).shape == (0,)
        assert magnet.detector_scores(self._empty()).shape == (1, 0)
        assert magnet.detect(self._empty()).shape == (0,)

    def test_reformer_empty(self):
        out = Reformer(_ConstantAE(0.5)).reform(self._empty())
        assert out.shape == (0, 1, 2, 2)
        assert out.dtype == np.float32

    def test_jsd_detector_empty(self):
        from repro.defenses.detectors import JSDDetector
        det = JSDDetector(_IdentityAE(), _FixedClassifier())
        assert det.score(self._empty()).shape == (0,)
