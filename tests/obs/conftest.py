"""Shared isolation for observability tests.

The sink is process-global (configured via the ``REPRO_TELEMETRY`` env
var) and the metrics registry is a process-global singleton; every test
here starts from a disabled sink and zeroed metrics so tests cannot see
each other's state.
"""

import pytest

from repro.obs import TELEMETRY_ENV, configure_observability, metrics_registry


@pytest.fixture(autouse=True)
def _isolated_obs(monkeypatch):
    monkeypatch.delenv(TELEMETRY_ENV, raising=False)
    metrics_registry().reset()
    yield
    configure_observability(None)
