"""Trace-context propagation across ParallelExecutor worker processes.

The acceptance contract for the span API: spans opened inside worker
processes carry the driver's trace id and nest under the driver's
``runtime/map`` span, and the reassembled tree is structurally identical
for ``jobs=1`` (serial in-process path) and ``jobs=4`` (process pool) —
only ordering and pids may differ.
"""

from repro.obs import (
    build_span_tree,
    configure_observability,
    load_events,
    span,
    tree_signature,
)
from repro.runtime.executor import parallel_map


def _traced_square(x):
    """Worker body opening its own span (must be picklable)."""
    with span("work/item", item=x):
        return x * x


def _run_traced_map(path, jobs):
    configure_observability(path)
    try:
        with span("driver/root"):
            result = parallel_map(_traced_square, [1, 2, 3, 4], jobs=jobs)
    finally:
        configure_observability(None)
    return result


class TestWorkerSpanPropagation:
    def test_worker_spans_carry_driver_trace_id(self, tmp_path):
        path = tmp_path / "pool.jsonl"
        assert _run_traced_map(path, jobs=4) == [1, 4, 9, 16]
        events = load_events(path)
        by_stage = {}
        for e in events:
            by_stage.setdefault(e["stage"], []).append(e)
        (root,) = by_stage["driver/root"]
        (runtime_map,) = by_stage["runtime/map"]
        items = by_stage["work/item"]
        assert len(items) == 4
        assert runtime_map["parent"] == root["span"]
        for item in items:
            assert item["trace"] == root["trace"]
            assert item["parent"] == runtime_map["span"]

    def test_serial_path_produces_same_nesting(self, tmp_path):
        path = tmp_path / "serial.jsonl"
        _run_traced_map(path, jobs=1)
        events = load_events(path)
        (root,) = build_span_tree(events)
        assert root.name == "driver/root"
        (runtime_map,) = root.children
        assert runtime_map.name == "runtime/map"
        assert sorted(c.name for c in runtime_map.children) == \
            ["work/item"] * 4

    def test_tree_identical_for_serial_and_parallel(self, tmp_path):
        serial, pool = tmp_path / "serial.jsonl", tmp_path / "pool.jsonl"
        assert (_run_traced_map(serial, jobs=1)
                == _run_traced_map(pool, jobs=4))
        sig_serial = tree_signature(build_span_tree(load_events(serial)))
        sig_pool = tree_signature(build_span_tree(load_events(pool)))
        assert sig_serial == sig_pool

    def test_no_trace_ids_when_disabled(self, tmp_path):
        with span("driver/root"):
            out = parallel_map(_traced_square, [1, 2], jobs=2)
        assert out == [1, 4]
        assert not (tmp_path / "t.jsonl").exists()
