"""Unit tests for the lock-striped metrics registry."""

import threading

import pytest

from repro.obs import (
    counter,
    gauge,
    histogram,
    metrics_registry,
    metrics_snapshot,
)


class TestCounter:
    def test_inc_and_value(self):
        c = counter("test/hits")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_same_name_same_instance(self):
        assert counter("test/one") is counter("test/one")

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            counter("test/neg").inc(-1)

    def test_concurrent_increments_are_not_lost(self):
        c = counter("test/contended")
        n, per_thread = 8, 500

        def worker():
            for _ in range(per_thread):
                c.inc()

        threads = [threading.Thread(target=worker) for _ in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == n * per_thread


class TestGauge:
    def test_set_and_add(self):
        g = gauge("test/depth")
        g.set(7.0)
        g.add(-2.0)
        assert g.value == 5.0


class TestHistogram:
    def test_observations_land_in_buckets(self):
        h = histogram("test/latency", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 5.0, 50.0):
            h.observe(v)
        snap = h.snapshot()
        assert snap["count"] == 4
        assert snap["sum"] == pytest.approx(55.55)
        assert snap["min"] == pytest.approx(0.05)
        assert snap["max"] == pytest.approx(50.0)
        assert snap["buckets"]["le_0.1"] == 1
        assert snap["buckets"]["le_1"] == 1
        assert snap["buckets"]["le_10"] == 1
        assert snap["buckets"]["le_inf"] == 1

    def test_boundary_value_counts_in_lower_bucket(self):
        h = histogram("test/edge", buckets=(1.0, 2.0))
        h.observe(1.0)
        assert h.snapshot()["buckets"]["le_1"] == 1


class TestRegistry:
    def test_kind_mismatch_raises(self):
        counter("test/typed")
        with pytest.raises(TypeError):
            gauge("test/typed")

    def test_snapshot_groups_by_kind(self):
        counter("test/c").inc()
        gauge("test/g").set(1.5)
        histogram("test/h").observe(0.2)
        snap = metrics_snapshot()
        assert snap["counters"]["test/c"] == 1
        assert snap["gauges"]["test/g"] == 1.5
        assert snap["histograms"]["test/h"]["count"] == 1

    def test_reset_zeroes_but_keeps_handles_valid(self):
        c = counter("test/persistent")
        c.inc(3)
        metrics_registry().reset()
        assert c.value == 0
        c.inc()                              # hoisted handle still works
        assert counter("test/persistent").value == 1


class TestPrometheusRendering:
    def test_counter_gets_total_suffix_and_sanitized_name(self):
        counter("serve/requests").inc(2)
        text = metrics_registry().render_prometheus()
        assert "# TYPE serve_requests_total counter" in text
        assert "serve_requests_total 2" in text

    def test_histogram_buckets_are_cumulative(self):
        h = histogram("test/hist", buckets=(1.0, 2.0))
        h.observe(0.5)
        h.observe(1.5)
        h.observe(99.0)
        text = metrics_registry().render_prometheus()
        assert 'test_hist_bucket{le="1"} 1' in text
        assert 'test_hist_bucket{le="2"} 2' in text
        assert 'test_hist_bucket{le="+Inf"} 3' in text
        assert "test_hist_count 3" in text

    def test_extra_gauges_folded_in(self):
        text = metrics_registry().render_prometheus(
            extra_gauges={"serve/latency_ms_p95": 12.5})
        assert "serve_latency_ms_p95 12.5" in text
