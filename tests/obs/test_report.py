"""Unit tests for log reading, skip counting, and trace reassembly."""

import json

from repro.obs import (
    EventLog,
    aggregate_events,
    build_span_tree,
    configure_observability,
    load_events,
    render_timings,
    render_trace,
    span,
    tree_signature,
)
from repro.obs.report import SKIPPED_STAGE


class TestLoadEventsResilience:
    def test_truncated_final_line_skipped_and_counted(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"stage": "a", "duration_s": 1}\n'
                        '{"stage": "b", "durati')      # torn mid-write
        events = load_events(path)
        assert [e["stage"] for e in events] == ["a"]
        assert events.skipped == 1

    def test_line_torn_inside_utf8_sequence(self, tmp_path):
        path = tmp_path / "t.jsonl"
        good = json.dumps({"stage": "a"}).encode()
        torn = b'{"stage": "na\xc3'        # cut after the first byte of 'ï'
        path.write_bytes(good + b"\n" + torn)
        events = load_events(path)
        assert [e["stage"] for e in events] == ["a"]
        assert events.skipped == 1

    def test_clean_log_has_zero_skips(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"stage": "a"}\n{"stage": "b"}\n')
        assert load_events(path).skipped == 0

    def test_missing_file_is_empty_log(self, tmp_path):
        events = load_events(tmp_path / "absent.jsonl")
        assert events == []
        assert events.skipped == 0


class TestSkipCountReporting:
    def _log_with_skips(self, n):
        events = EventLog([{"stage": "a", "duration_s": 1.0}])
        events.skipped = n
        return events

    def test_aggregate_adds_synthetic_stage(self):
        stats = aggregate_events(self._log_with_skips(3))
        assert stats[SKIPPED_STAGE].count == 3
        assert stats[SKIPPED_STAGE].total_s == 0.0

    def test_aggregate_without_skips_has_no_synthetic_stage(self):
        stats = aggregate_events(EventLog([{"stage": "a"}]))
        assert SKIPPED_STAGE not in stats

    def test_render_timings_calls_out_skips(self):
        text = render_timings(self._log_with_skips(2))
        assert "2 corrupt line(s) skipped" in text


class TestBuildSpanTree:
    def _span(self, name, span_id, parent=None, trace="t1", **extra):
        rec = {"stage": name, "kind": "span", "span": span_id,
               "trace": trace, "ts": extra.pop("ts", 0.0),
               "duration_s": extra.pop("duration_s", 1.0)}
        if parent:
            rec["parent"] = parent
        rec.update(extra)
        return rec

    def test_children_attach_to_parents(self):
        events = [self._span("child", "c1", parent="p1", ts=1.0),
                  self._span("root", "p1", ts=0.0, duration_s=5.0)]
        (root,) = build_span_tree(events)
        assert root.name == "root"
        assert [c.name for c in root.children] == ["child"]
        assert root.self_s == 4.0

    def test_orphan_promoted_to_root(self):
        events = [self._span("orphan", "o1", parent="never-closed")]
        (root,) = build_span_tree(events)
        assert root.name == "orphan"

    def test_point_event_becomes_leaf(self):
        events = [self._span("root", "p1"),
                  {"stage": "runtime/retry", "trace": "t1", "parent": "p1",
                   "ts": 0.5}]
        (root,) = build_span_tree(events)
        assert [c.name for c in root.children] == ["runtime/retry"]

    def test_flat_legacy_events_excluded(self):
        events = [{"stage": "legacy", "duration_s": 1.0}]
        assert build_span_tree(events) == []

    def test_signature_ignores_sibling_order_and_ids(self):
        a = [self._span("root", "r1"),
             self._span("x", "x1", parent="r1", ts=1.0),
             self._span("y", "y1", parent="r1", ts=2.0)]
        b = [self._span("root", "r9", trace="t9"),
             self._span("y", "y9", parent="r9", trace="t9", ts=1.0),
             self._span("x", "x9", parent="r9", trace="t9", ts=2.0)]
        assert (tree_signature(build_span_tree(a))
                == tree_signature(build_span_tree(b)))

    def test_signature_distinguishes_structure(self):
        flat = [self._span("root", "r1"), self._span("x", "x1", parent="r1")]
        nested = [self._span("root", "r1"),
                  self._span("x", "x1", parent="r1"),
                  self._span("x", "x2", parent="x1")]
        assert (tree_signature(build_span_tree(flat))
                != tree_signature(build_span_tree(nested)))


class TestRenderTrace:
    def test_renders_real_span_log(self, tmp_path):
        path = tmp_path / "t.jsonl"
        configure_observability(path)
        with span("sweep/precompute", cells=2):
            for step in range(2):
                with span("sweep/cell", step=step):
                    pass
        configure_observability(None)
        text = render_trace(load_events(path))
        assert "sweep/precompute" in text
        assert "sweep/cell ×2" in text
        assert "total=" in text
        assert "self=" in text

    def test_no_collapse_renders_each_span(self, tmp_path):
        path = tmp_path / "t.jsonl"
        configure_observability(path)
        with span("root"):
            with span("leaf"):
                pass
            with span("leaf"):
                pass
        configure_observability(None)
        text = render_trace(load_events(path), collapse=False)
        assert text.count("leaf") == 2

    def test_max_depth_truncates(self, tmp_path):
        path = tmp_path / "t.jsonl"
        configure_observability(path)
        with span("root"):
            with span("leaf"):
                pass
        configure_observability(None)
        text = render_trace(load_events(path), max_depth=1)
        assert "root" in text
        assert "leaf" not in text

    def test_empty_log_message(self):
        assert "no trace spans" in render_trace([])
