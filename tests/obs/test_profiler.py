"""Unit tests for the sampling wall-clock profiler."""

import json

import pytest

from repro.obs import SamplingProfiler, configure_observability, profiled


def _busy_work(deadline_iters: int = 400_000) -> float:
    total = 0.0
    for i in range(deadline_iters):
        total += (i % 7) * 0.5
    return total


class TestSamplingProfiler:
    def test_collects_samples_from_busy_loop(self):
        with SamplingProfiler(interval_s=0.001) as prof:
            for _ in range(20):
                _busy_work()
        assert prof.samples > 0
        top = prof.top_functions(5)
        assert top
        assert {"function", "site", "self", "self_pct", "cumulative"} <= set(
            top[0])
        assert any(row["function"] == "_busy_work" for row in top)

    def test_report_renders_table(self):
        with SamplingProfiler(interval_s=0.001) as prof:
            for _ in range(10):
                _busy_work()
        text = prof.report()
        assert "samples" in text
        assert "_busy_work" in text

    def test_empty_profile_report(self):
        prof = SamplingProfiler()
        assert prof.report() == "no profile samples collected"

    def test_invalid_interval_rejected(self):
        with pytest.raises(ValueError):
            SamplingProfiler(interval_s=0.0)

    def test_double_start_rejected(self):
        prof = SamplingProfiler().start()
        try:
            with pytest.raises(RuntimeError):
                prof.start()
        finally:
            prof.stop()

    def test_snapshot_shape(self):
        with SamplingProfiler(interval_s=0.001) as prof:
            _busy_work()
        snap = prof.snapshot()
        assert snap["interval_s"] == 0.001
        assert snap["samples"] == prof.samples
        assert isinstance(snap["top"], list)


class TestProfiledContextManager:
    def test_emits_profile_event_when_sink_enabled(self, tmp_path):
        path = tmp_path / "t.jsonl"
        configure_observability(path)
        with profiled("hot", interval_s=0.001) as prof:
            for _ in range(10):
                _busy_work()
        records = [json.loads(line) for line in path.read_text().splitlines()]
        (rec,) = [r for r in records if r["stage"] == "profile/hot"]
        assert rec["samples"] == prof.samples
        assert rec["duration_s"] > 0

    def test_silent_when_sink_disabled(self, tmp_path):
        with profiled("quiet", interval_s=0.001):
            _busy_work()
        assert not (tmp_path / "t.jsonl").exists()
