"""Unit tests for hierarchical spans and cross-boundary trace context."""

import json
import time

from repro.obs import (
    TraceContext,
    attach_trace_context,
    configure_observability,
    current_span,
    current_trace_context,
    event,
    record_span,
    span,
    start_span,
)


def _read(path):
    return [json.loads(line) for line in path.read_text().splitlines()]


class TestSpanEmission:
    def test_span_emits_record_with_ids(self, tmp_path):
        path = tmp_path / "t.jsonl"
        configure_observability(path)
        with span("outer", dataset="digits"):
            pass
        (rec,) = _read(path)
        assert rec["stage"] == "outer"
        assert rec["kind"] == "span"
        assert rec["dataset"] == "digits"
        assert len(rec["trace"]) == 16
        assert len(rec["span"]) == 16
        assert "parent" not in rec          # a root span has no parent
        assert rec["duration_s"] >= 0.0

    def test_nested_spans_share_trace_and_link_parent(self, tmp_path):
        path = tmp_path / "t.jsonl"
        configure_observability(path)
        with span("outer"):
            with span("inner"):
                pass
        inner, outer = _read(path)          # inner closes (and emits) first
        assert inner["stage"] == "inner"
        assert outer["stage"] == "outer"
        assert inner["trace"] == outer["trace"]
        assert inner["parent"] == outer["span"]

    def test_span_attrs_settable_mid_block(self, tmp_path):
        path = tmp_path / "t.jsonl"
        configure_observability(path)
        with span("s", batch=4) as sp:
            sp["cache"] = "hit"
            sp.update(items=3)
        (rec,) = _read(path)
        assert rec["batch"] == 4
        assert rec["cache"] == "hit"
        assert rec["items"] == 3

    def test_span_emits_on_exception(self, tmp_path):
        path = tmp_path / "t.jsonl"
        configure_observability(path)
        try:
            with span("failing"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        (rec,) = _read(path)
        assert rec["stage"] == "failing"

    def test_none_valued_attrs_dropped(self, tmp_path):
        path = tmp_path / "t.jsonl"
        configure_observability(path)
        with span("s", cache=None, batch=2):
            pass
        (rec,) = _read(path)
        assert "cache" not in rec
        assert rec["batch"] == 2

    def test_duration_measures_block(self, tmp_path):
        path = tmp_path / "t.jsonl"
        configure_observability(path)
        with span("sleepy"):
            time.sleep(0.01)
        (rec,) = _read(path)
        assert rec["duration_s"] >= 0.01


class TestDisabledPath:
    def test_disabled_span_has_no_ids_and_writes_nothing(self, tmp_path):
        with span("s") as sp:
            sp["cache"] = "hit"             # still writable
        assert not sp.recording
        assert sp.context is None
        assert current_span() is None

    def test_disabled_span_does_not_become_current(self):
        with span("outer"):
            assert current_span() is None
            assert current_trace_context() is None

    def test_disabled_event_and_record_span_are_noops(self):
        event("e", duration_s=1.0)
        record_span("s", 0.5)


class TestManualLifecycle:
    def test_start_span_not_current_until_finished_manually(self, tmp_path):
        path = tmp_path / "t.jsonl"
        configure_observability(path)
        sp = start_span("serve/request", request="r1")
        assert current_span() is None       # manual spans are not current
        assert not path.exists()            # nothing emitted until finish
        sp.finish(detected=False)
        (rec,) = _read(path)
        assert rec["stage"] == "serve/request"
        assert rec["request"] == "r1"
        assert rec["detected"] is False

    def test_finish_is_idempotent(self, tmp_path):
        path = tmp_path / "t.jsonl"
        configure_observability(path)
        sp = start_span("s")
        sp.finish()
        sp.finish()
        assert len(_read(path)) == 1


class TestEvents:
    def test_event_under_span_carries_trace_and_parent(self, tmp_path):
        path = tmp_path / "t.jsonl"
        configure_observability(path)
        with span("outer"):
            event("runtime/retry", item=3)
        evt, outer = _read(path)
        assert evt["stage"] == "runtime/retry"
        assert evt["trace"] == outer["trace"]
        assert evt["parent"] == outer["span"]
        assert "span" not in evt            # point event, not a span

    def test_bare_event_is_flat(self, tmp_path):
        path = tmp_path / "t.jsonl"
        configure_observability(path)
        event("standalone", duration_s=0.5, batch=2)
        (rec,) = _read(path)
        assert rec["stage"] == "standalone"
        assert "trace" not in rec

    def test_record_span_backdates_duration(self, tmp_path):
        path = tmp_path / "t.jsonl"
        configure_observability(path)
        with span("serve/batch"):
            record_span("serve/detect", 0.125, batch=4)
        detect, batch = _read(path)
        assert detect["stage"] == "serve/detect"
        assert abs(detect["duration_s"] - 0.125) < 0.01
        assert detect["parent"] == batch["span"]
        assert detect["kind"] == "span"


class TestAttachTraceContext:
    def test_spans_nest_under_attached_context(self, tmp_path):
        path = tmp_path / "t.jsonl"
        configure_observability(path)
        ctx = TraceContext(trace_id="a" * 16, span_id="b" * 16)
        with attach_trace_context(ctx):
            with span("worker/item"):
                pass
        (rec,) = _read(path)
        assert rec["trace"] == "a" * 16
        assert rec["parent"] == "b" * 16

    def test_none_context_is_noop(self, tmp_path):
        path = tmp_path / "t.jsonl"
        configure_observability(path)
        with attach_trace_context(None):
            with span("item"):
                pass
        (rec,) = _read(path)
        assert "parent" not in rec

    def test_context_restored_after_block(self, tmp_path):
        configure_observability(tmp_path / "t.jsonl")
        ctx = TraceContext(trace_id="a" * 16, span_id="b" * 16)
        with attach_trace_context(ctx):
            assert current_trace_context() == ctx
        assert current_trace_context() is None

    def test_current_trace_context_roundtrips_through_span(self, tmp_path):
        configure_observability(tmp_path / "t.jsonl")
        with span("outer") as sp:
            ctx = current_trace_context()
            assert ctx == TraceContext(sp.trace_id, sp.span_id)
