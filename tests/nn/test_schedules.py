"""Unit tests for LR schedules and gradient clipping."""

import numpy as np
import pytest

from repro.nn import (
    Adam,
    ConstantLR,
    CosineLR,
    SqrtDecayLR,
    StepLR,
    Tensor,
    clip_grad_norm,
    clip_grad_value,
)


class TestSchedules:
    def test_constant(self):
        sched = ConstantLR(0.1)
        assert sched.lr_at(0) == sched.lr_at(100) == 0.1

    def test_step_decay(self):
        sched = StepLR(1.0, step_size=10, gamma=0.5)
        assert sched.lr_at(0) == 1.0
        assert sched.lr_at(9) == 1.0
        assert sched.lr_at(10) == 0.5
        assert sched.lr_at(20) == 0.25

    def test_cosine_endpoints(self):
        sched = CosineLR(1.0, total_epochs=50, min_lr=0.1)
        assert sched.lr_at(0) == pytest.approx(1.0)
        assert sched.lr_at(50) == pytest.approx(0.1)
        assert sched.lr_at(25) == pytest.approx(0.55, abs=1e-6)

    def test_cosine_monotone_decreasing(self):
        sched = CosineLR(1.0, total_epochs=30)
        lrs = [sched.lr_at(e) for e in range(31)]
        assert all(a >= b - 1e-12 for a, b in zip(lrs, lrs[1:]))

    def test_sqrt_decay_matches_ead_formula(self):
        sched = SqrtDecayLR(0.01, total_epochs=100)
        assert sched.lr_at(0) == pytest.approx(0.01)
        assert sched.lr_at(75) == pytest.approx(0.005)
        assert sched.lr_at(100) == 0.0

    def test_apply_sets_optimizer_lr(self):
        w = Tensor(np.ones(2), requires_grad=True)
        opt = Adam([w], lr=1.0)
        sched = StepLR(1.0, step_size=1, gamma=0.1)
        lr = sched.apply(opt, epoch=2)
        assert opt.lr == lr == pytest.approx(0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            ConstantLR(0.0)
        with pytest.raises(ValueError):
            StepLR(0.1, step_size=0)
        with pytest.raises(ValueError):
            CosineLR(0.1, total_epochs=0)
        with pytest.raises(ValueError):
            CosineLR(0.1, total_epochs=5, min_lr=0.5)
        with pytest.raises(ValueError):
            SqrtDecayLR(0.1, total_epochs=0)


class TestGradClipping:
    def test_norm_clip_scales_down(self):
        a = Tensor(np.zeros(3), requires_grad=True)
        b = Tensor(np.zeros(4), requires_grad=True)
        a.grad = np.full(3, 3.0, dtype=np.float32)
        b.grad = np.full(4, 4.0, dtype=np.float32)
        pre = clip_grad_norm([a, b], max_norm=1.0)
        total = np.sqrt((a.grad ** 2).sum() + (b.grad ** 2).sum())
        assert pre > 1.0
        assert total == pytest.approx(1.0, rel=1e-5)

    def test_norm_clip_noop_when_small(self):
        a = Tensor(np.zeros(2), requires_grad=True)
        a.grad = np.array([0.1, 0.1], dtype=np.float32)
        pre = clip_grad_norm([a], max_norm=10.0)
        np.testing.assert_allclose(a.grad, [0.1, 0.1])
        assert pre == pytest.approx(np.sqrt(0.02), rel=1e-5)

    def test_norm_clip_skips_none_grads(self):
        a = Tensor(np.zeros(2), requires_grad=True)
        assert clip_grad_norm([a], max_norm=1.0) == 0.0

    def test_value_clip(self):
        a = Tensor(np.zeros(3), requires_grad=True)
        a.grad = np.array([-5.0, 0.2, 7.0], dtype=np.float32)
        clip_grad_value([a], max_value=1.0)
        np.testing.assert_allclose(a.grad, [-1.0, 0.2, 1.0])

    def test_validation(self):
        a = Tensor(np.zeros(1), requires_grad=True)
        with pytest.raises(ValueError):
            clip_grad_norm([a], max_norm=0.0)
        with pytest.raises(ValueError):
            clip_grad_value([a], max_value=-1.0)
