"""Property-based tests on autograd algebraic identities.

Reverse-mode differentiation must respect the algebra of derivatives;
these tests check linearity, product/chain rules and structural
identities on random inputs rather than hand-picked cases.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.nn.autograd import Tensor

_vals = st.floats(min_value=-3.0, max_value=3.0, allow_nan=False, width=32)


def _grad_of(fn, x: np.ndarray) -> np.ndarray:
    t = Tensor(x, requires_grad=True, dtype=np.float64)
    fn(t).sum().backward()
    return t.grad.copy()


def _arrays():
    return arrays(np.float64, (3, 4), elements=_vals)


class TestLinearity:
    @given(x=_arrays(), a=st.floats(-2, 2), b=st.floats(-2, 2))
    @settings(max_examples=40, deadline=None)
    def test_grad_of_linear_combination(self, x, a, b):
        g1 = _grad_of(lambda t: a * (t * t) + b * t, x)
        g2 = a * _grad_of(lambda t: t * t, x) + b * _grad_of(lambda t: t, x)
        np.testing.assert_allclose(g1, g2, rtol=1e-9, atol=1e-9)

    @given(x=_arrays())
    @settings(max_examples=40, deadline=None)
    def test_sum_of_parts_equals_whole(self, x):
        g_whole = _grad_of(lambda t: (t * t).sum(), x)
        g_rows = _grad_of(lambda t: (t * t).sum(axis=0).sum(), x)
        np.testing.assert_allclose(g_whole, g_rows, rtol=1e-9)


class TestProductAndChainRules:
    @given(x=_arrays(), y=_arrays())
    @settings(max_examples=40, deadline=None)
    def test_product_rule(self, x, y):
        # d/dx sum(x*y) = y
        t = Tensor(x, requires_grad=True, dtype=np.float64)
        other = Tensor(y, dtype=np.float64)
        (t * other).sum().backward()
        np.testing.assert_allclose(t.grad, y, rtol=1e-9)

    @given(x=_arrays())
    @settings(max_examples=40, deadline=None)
    def test_chain_rule_exp_of_square(self, x):
        x = np.clip(x, -1.5, 1.5)
        g = _grad_of(lambda t: (t * t).exp(), x)
        expected = np.exp(x ** 2) * 2 * x
        np.testing.assert_allclose(g, expected, rtol=1e-8, atol=1e-10)

    @given(x=_arrays())
    @settings(max_examples=40, deadline=None)
    def test_reshape_transpose_invariance(self, x):
        g1 = _grad_of(lambda t: (t * t), x)
        g2 = _grad_of(lambda t: (t.reshape((4, 3)) * t.reshape((4, 3))), x)
        g3 = _grad_of(lambda t: (t.T * t.T), x)
        np.testing.assert_allclose(g1, g2, rtol=1e-9)
        np.testing.assert_allclose(g1, g3, rtol=1e-9)


class TestStructuralIdentities:
    @given(x=_arrays())
    @settings(max_examples=40, deadline=None)
    def test_double_negation(self, x):
        g = _grad_of(lambda t: -(-t), x)
        np.testing.assert_allclose(g, np.ones_like(x))

    @given(x=_arrays())
    @settings(max_examples=40, deadline=None)
    def test_add_sub_cancel(self, x):
        y = Tensor(np.ones_like(x), dtype=np.float64)
        g = _grad_of(lambda t: (t + y) - y, x)
        np.testing.assert_allclose(g, np.ones_like(x), rtol=1e-9)

    @given(x=_arrays())
    @settings(max_examples=40, deadline=None)
    def test_mul_div_cancel(self, x):
        denom = Tensor(np.full_like(x, 2.0), dtype=np.float64)
        g = _grad_of(lambda t: (t * denom) / denom, x)
        np.testing.assert_allclose(g, np.ones_like(x), rtol=1e-9)

    @given(x=_arrays())
    @settings(max_examples=40, deadline=None)
    def test_detach_blocks_gradient(self, x):
        t = Tensor(x, requires_grad=True, dtype=np.float64)
        (t.detach() * 3.0).sum().backward()
        assert t.grad is None

    @given(x=_arrays())
    @settings(max_examples=30, deadline=None)
    def test_concat_then_slice_roundtrip(self, x):
        from repro.nn.autograd import concatenate

        def fn(t):
            doubled = concatenate([t, t], axis=0)
            return doubled[: t.shape[0]] + doubled[t.shape[0]:]

        g = _grad_of(fn, x)
        np.testing.assert_allclose(g, np.full_like(x, 2.0), rtol=1e-9)
