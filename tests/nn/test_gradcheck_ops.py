"""Exhaustive finite-difference coverage of every autograd op.

`tests/nn/test_autograd.py` spot-checks ops as it exercises engine
mechanics; this module is the systematic sweep.  Every differentiable op
exported by :mod:`repro.nn.autograd` appears below, checked through the
public :func:`repro.nn.gradcheck.check_gradients` API — multi-input ops
are verified with respect to *all* operands in a single call, which also
covers paths the engine-mechanics tests skip (``clip``, fancy ``take``
with repeated indices, the second operand of ``maximum``/``minimum``/
``where``, both halves of ``concatenate``).

Inputs for kinked ops (abs, relu, clip, max/min, where) are nudged away
from their non-differentiable points so the eps=1e-5 central difference
stays on one branch.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.nn.autograd as ag
from repro.nn.gradcheck import check_gradients, numerical_gradient

RNG = np.random.default_rng(20260806)


def _away_from(values: np.ndarray, points, margin: float = 1e-2) -> np.ndarray:
    """Push entries of ``values`` at least ``margin`` away from ``points``."""
    out = values.copy()
    for p in points:
        close = np.abs(out - p) < margin
        out[close] = p + margin * np.where(out[close] >= p, 1.0, -1.0) * 2.0
    return out


def _pair(shape=(3, 4), *, low=None, sep=False):
    """Two random arrays; ``low`` bounds below, ``sep`` keeps them apart."""
    a = RNG.standard_normal(shape)
    b = RNG.standard_normal(shape)
    if low is not None:
        a = np.abs(a) + low
        b = np.abs(b) + low
    if sep:
        b = a + np.where(RNG.random(shape) > 0.5, 0.5, -0.5)
    return a, b


_WHERE_COND = RNG.random((3, 4)) > 0.5
_TAKE_IDX = np.array([0, 2, 2, 1, 0])  # repeats: gradients must accumulate

# (name, op, input arrays) — every differentiable op in repro.nn.autograd.
_CASES = [
    ("add", lambda a, b: a + b, _pair()),
    ("sub", lambda a, b: a - b, _pair()),
    ("mul", lambda a, b: a * b, _pair()),
    ("div", lambda a, b: a / b, _pair(low=0.5)),
    ("neg", lambda a: -a, (RNG.standard_normal((2, 5)),)),
    ("power_int", lambda a: a ** 3, (RNG.standard_normal((3, 3)),)),
    ("power_frac", lambda a: a ** 2.5, (np.abs(RNG.standard_normal((3, 3))) + 0.5,)),
    ("exp", ag.exp, (RNG.standard_normal((2, 3)),)),
    ("log", ag.log, (RNG.random((2, 3)) + 0.5,)),
    ("sqrt", ag.sqrt, (RNG.random((2, 3)) + 0.5,)),
    ("abs", ag.abs_, (_away_from(RNG.standard_normal((3, 4)), [0.0]),)),
    ("clip", lambda a: ag.clip(a, -0.5, 0.5),
     (_away_from(RNG.standard_normal((3, 4)), [-0.5, 0.5]),)),
    ("maximum", ag.maximum, _pair(sep=True)),
    ("minimum", ag.minimum, _pair(sep=True)),
    ("relu", ag.relu, (_away_from(RNG.standard_normal((3, 4)), [0.0]),)),
    ("leaky_relu", lambda a: ag.leaky_relu(a, 0.2),
     (_away_from(RNG.standard_normal((3, 4)), [0.0]),)),
    ("softplus", ag.softplus, (RNG.standard_normal((3, 4)),)),
    ("sigmoid", ag.sigmoid, (RNG.standard_normal((3, 4)),)),
    ("tanh", ag.tanh, (RNG.standard_normal((3, 4)),)),
    ("matmul", lambda a, b: a @ b,
     (RNG.standard_normal((3, 4)), RNG.standard_normal((4, 2)))),
    ("matmul_batched", lambda a, b: a @ b,
     (RNG.standard_normal((2, 3, 4)), RNG.standard_normal((2, 4, 2)))),
    ("sum_all", ag.sum_, (RNG.standard_normal((3, 4)),)),
    ("sum_axis", lambda a: ag.sum_(a, axis=1, keepdims=True),
     (RNG.standard_normal((3, 4)),)),
    ("mean_all", ag.mean, (RNG.standard_normal((3, 4)),)),
    ("mean_axis", lambda a: ag.mean(a, axis=0), (RNG.standard_normal((3, 4)),)),
    ("reshape", lambda a: ag.reshape(a, (6, 2)), (RNG.standard_normal((3, 4)),)),
    ("transpose", lambda a: ag.transpose(a, (2, 0, 1)),
     (RNG.standard_normal((2, 3, 4)),)),
    ("take_slice", lambda a: a[1:3], (RNG.standard_normal((4, 3)),)),
    ("take_fancy", lambda a: ag.take(a, _TAKE_IDX),
     (RNG.standard_normal((4, 3)),)),
    ("concatenate", lambda a, b: ag.concatenate([a, b], axis=1),
     _pair((3, 2))),
    ("pad2d", lambda a: ag.pad2d(a, 2), (RNG.standard_normal((2, 1, 4, 4)),)),
    ("where", lambda a, b: ag.where(_WHERE_COND, a, b), _pair()),
    ("add_broadcast", lambda a, b: a + b,
     (RNG.standard_normal((3, 4)), RNG.standard_normal((4,)))),
    ("mul_broadcast", lambda a, b: a * b,
     (RNG.standard_normal((2, 3, 4)), RNG.standard_normal((3, 1)))),
]


@pytest.mark.parametrize("name,op,inputs", _CASES,
                         ids=[case[0] for case in _CASES])
def test_op_gradient_matches_finite_difference(name, op, inputs):
    check_gradients(op, *inputs)


class TestCheckGradientsAPI:
    def test_requires_at_least_one_input(self):
        with pytest.raises(ValueError, match="at least one input"):
            check_gradients(lambda: None)

    def test_detects_wrong_gradient(self):
        # A "gradient-free" op: detached output breaks the graph, so the
        # input never receives a gradient and the check must fail.
        def broken(a):
            return ag.as_tensor(a.data * 2.0)

        with pytest.raises(AssertionError):
            check_gradients(broken, RNG.standard_normal((2, 2)))

    def test_reports_offending_input_position(self):
        # Gradient only flows to operand 0; operand 1 is detached.
        def half_broken(a, b):
            return a * ag.as_tensor(b.data)

        with pytest.raises(AssertionError, match="input 1"):
            check_gradients(half_broken, *_pair((2, 2)))

    def test_numerical_gradient_of_quadratic(self):
        x = RNG.standard_normal((2, 3))
        grad = numerical_gradient(lambda arr: float((arr ** 2).sum()), x)
        np.testing.assert_allclose(grad, 2.0 * x, atol=1e-6, rtol=1e-6)
