"""Unit tests for the reverse-mode autodiff engine."""

import numpy as np
import pytest

from repro.nn import autograd as ag
from repro.nn.autograd import Tensor, no_grad, unbroadcast

from tests.nn.gradcheck import check_gradient


class TestTensorBasics:
    def test_wraps_ndarray(self):
        t = Tensor(np.ones((2, 3)))
        assert t.shape == (2, 3)
        # float64 input stays float64 (gradcheck relies on this).
        assert t.dtype == np.float64
        assert Tensor(np.ones(2, dtype=np.float32)).dtype == np.float32

    def test_int_data_promoted_to_float(self):
        t = Tensor(np.arange(4))
        assert t.dtype == np.float32

    def test_explicit_dtype_respected(self):
        t = Tensor(np.ones(3), dtype=np.float64)
        assert t.dtype == np.float64

    def test_wrapping_tensor_raises(self):
        with pytest.raises(TypeError):
            Tensor(Tensor(np.ones(2)))

    def test_item_on_scalar(self):
        assert Tensor(np.array(3.5)).item() == pytest.approx(3.5)

    def test_detach_shares_data_but_no_graph(self):
        t = Tensor(np.ones(3), requires_grad=True)
        d = t.detach()
        assert d.data is t.data
        assert not d.requires_grad

    def test_len_and_repr(self):
        t = Tensor(np.zeros((4, 2)), requires_grad=True)
        assert len(t) == 4
        assert "requires_grad=True" in repr(t)


class TestBackwardMechanics:
    def test_scalar_backward_default_grad(self):
        t = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        (t * t).sum().backward()
        np.testing.assert_allclose(t.grad, [2.0, 4.0])

    def test_nonscalar_backward_requires_grad_argument(self):
        t = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(ValueError):
            (t * 2).backward()

    def test_backward_with_explicit_grad(self):
        t = Tensor(np.ones(3), requires_grad=True)
        (t * 3).backward(np.array([1.0, 0.0, 2.0], dtype=np.float32))
        np.testing.assert_allclose(t.grad, [3.0, 0.0, 6.0])

    def test_grad_shape_mismatch_raises(self):
        t = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(ValueError):
            (t * 1).backward(np.ones(4, dtype=np.float32))

    def test_gradients_accumulate_across_backwards(self):
        t = Tensor(np.ones(2), requires_grad=True)
        (t.sum()).backward()
        (t.sum()).backward()
        np.testing.assert_allclose(t.grad, [2.0, 2.0])

    def test_zero_grad(self):
        t = Tensor(np.ones(2), requires_grad=True)
        t.sum().backward()
        t.zero_grad()
        assert t.grad is None

    def test_diamond_graph_sums_contributions(self):
        t = Tensor(np.array([2.0]), requires_grad=True)
        a = t * 3
        b = t * 5
        (a + b).sum().backward()
        np.testing.assert_allclose(t.grad, [8.0])

    def test_shared_subexpression_counted_once_per_path(self):
        t = Tensor(np.array([1.0]), requires_grad=True)
        shared = t * 2
        out = (shared + shared).sum()
        out.backward()
        np.testing.assert_allclose(t.grad, [4.0])

    def test_no_grad_blocks_graph(self):
        t = Tensor(np.ones(2), requires_grad=True)
        with no_grad():
            out = (t * t).sum()
        assert out._parents == []

    def test_no_grad_restores_state_on_exception(self):
        with pytest.raises(RuntimeError):
            with no_grad():
                raise RuntimeError("boom")
        assert ag.is_grad_enabled()

    def test_deep_chain_does_not_overflow(self):
        t = Tensor(np.array([1.0]), requires_grad=True)
        out = t
        for _ in range(3000):
            out = out + 0.0
        out.sum().backward()
        np.testing.assert_allclose(t.grad, [1.0])


class TestUnbroadcast:
    def test_noop_when_shapes_match(self):
        g = np.ones((2, 3))
        assert unbroadcast(g, (2, 3)) is g

    def test_sums_leading_axes(self):
        g = np.ones((4, 2, 3))
        out = unbroadcast(g, (2, 3))
        np.testing.assert_allclose(out, np.full((2, 3), 4.0))

    def test_sums_size_one_axes(self):
        g = np.ones((2, 3))
        out = unbroadcast(g, (2, 1))
        np.testing.assert_allclose(out, np.full((2, 1), 3.0))

    def test_mixed(self):
        g = np.ones((5, 2, 3))
        out = unbroadcast(g, (1, 3))
        assert out.shape == (1, 3)
        np.testing.assert_allclose(out, np.full((1, 3), 10.0))


class TestArithmeticGradients:
    def test_add_broadcast(self, rng):
        b = rng.standard_normal((1, 4))
        check_gradient(lambda t: t + Tensor(b, dtype=np.float64),
                       rng.standard_normal((3, 4)))

    def test_sub(self, rng):
        b = rng.standard_normal((3, 4))
        check_gradient(lambda t: Tensor(b, dtype=np.float64) - t,
                       rng.standard_normal((3, 4)))

    def test_mul_broadcast(self, rng):
        b = rng.standard_normal((3, 1))
        check_gradient(lambda t: t * Tensor(b, dtype=np.float64),
                       rng.standard_normal((3, 4)))

    def test_div(self, rng):
        b = rng.standard_normal((3, 4)) + 3.0
        check_gradient(lambda t: t / Tensor(b, dtype=np.float64),
                       rng.standard_normal((3, 4)))

    def test_div_denominator_gradient(self, rng):
        a = rng.standard_normal((3, 4))
        check_gradient(lambda t: Tensor(a, dtype=np.float64) / t,
                       rng.standard_normal((3, 4)) + 3.0)

    def test_neg(self, rng):
        check_gradient(lambda t: -t, rng.standard_normal((2, 5)))

    def test_power(self, rng):
        check_gradient(lambda t: t ** 3, rng.standard_normal((3, 3)) + 2.0)

    def test_power_tensor_exponent_rejected(self):
        t = Tensor(np.ones(2))
        with pytest.raises(TypeError):
            ag.power(t, Tensor(np.ones(2)))

    def test_exp(self, rng):
        check_gradient(ag.exp, rng.standard_normal((2, 3)))

    def test_log(self, rng):
        check_gradient(ag.log, rng.random((2, 3)) + 0.5)

    def test_sqrt(self, rng):
        check_gradient(ag.sqrt, rng.random((2, 3)) + 0.5)

    def test_abs_away_from_zero(self, rng):
        x = rng.standard_normal((3, 3))
        x[np.abs(x) < 0.2] = 0.5
        check_gradient(ag.abs_, x)

    def test_scalar_operand_promotion(self):
        t = Tensor(np.array([2.0]), requires_grad=True)
        out = (3.0 * t + 1.0) / 2.0 - 0.5
        out.sum().backward()
        np.testing.assert_allclose(t.grad, [1.5])


class TestNonlinearityGradients:
    def test_relu(self, rng):
        x = rng.standard_normal((4, 4))
        x[np.abs(x) < 0.1] = 0.3  # avoid the kink
        check_gradient(ag.relu, x)

    def test_sigmoid(self, rng):
        check_gradient(ag.sigmoid, rng.standard_normal((3, 4)))

    def test_sigmoid_extreme_values_stable(self):
        t = Tensor(np.array([-500.0, 500.0]), dtype=np.float64)
        out = ag.sigmoid(t)
        np.testing.assert_allclose(out.data, [0.0, 1.0], atol=1e-12)
        assert np.isfinite(out.data).all()

    def test_tanh(self, rng):
        check_gradient(ag.tanh, rng.standard_normal((3, 4)))

    def test_clip_interior_and_exterior(self):
        t = Tensor(np.array([-2.0, 0.5, 2.0]), requires_grad=True,
                   dtype=np.float64)
        out = ag.clip(t, 0.0, 1.0)
        out.sum().backward()
        np.testing.assert_allclose(out.data, [0.0, 0.5, 1.0])
        np.testing.assert_allclose(t.grad, [0.0, 1.0, 0.0])

    def test_maximum_gradients(self, rng):
        a = rng.standard_normal((3, 3))
        b = a + np.where(rng.random((3, 3)) > 0.5, 1.0, -1.0)
        check_gradient(lambda t: ag.maximum(t, Tensor(b, dtype=np.float64)), a)

    def test_minimum_gradients(self, rng):
        a = rng.standard_normal((3, 3))
        b = a + np.where(rng.random((3, 3)) > 0.5, 1.0, -1.0)
        check_gradient(lambda t: ag.minimum(t, Tensor(b, dtype=np.float64)), a)

    def test_maximum_tie_splits_gradient(self):
        a = Tensor(np.array([1.0]), requires_grad=True, dtype=np.float64)
        b = Tensor(np.array([1.0]), requires_grad=True, dtype=np.float64)
        ag.maximum(a, b).sum().backward()
        np.testing.assert_allclose(a.grad, [0.5])
        np.testing.assert_allclose(b.grad, [0.5])


class TestStructuralGradients:
    def test_matmul_2d(self, rng):
        b = rng.standard_normal((4, 5))
        check_gradient(lambda t: t @ Tensor(b, dtype=np.float64),
                       rng.standard_normal((3, 4)))

    def test_matmul_right_operand(self, rng):
        a = rng.standard_normal((3, 4))
        check_gradient(lambda t: Tensor(a, dtype=np.float64) @ t,
                       rng.standard_normal((4, 2)))

    def test_matmul_batched(self, rng):
        b = rng.standard_normal((2, 4, 3))
        check_gradient(lambda t: t @ Tensor(b, dtype=np.float64),
                       rng.standard_normal((2, 5, 4)))

    def test_sum_axis_keepdims(self, rng):
        check_gradient(lambda t: ag.sum_(t, axis=1, keepdims=True),
                       rng.standard_normal((3, 4)))

    def test_sum_multiple_axes(self, rng):
        check_gradient(lambda t: ag.sum_(t, axis=(0, 2)),
                       rng.standard_normal((2, 3, 4)))

    def test_mean_matches_manual(self, rng):
        x = rng.standard_normal((3, 4))
        t = Tensor(x, requires_grad=True, dtype=np.float64)
        ag.mean(t).backward()
        np.testing.assert_allclose(t.grad, np.full((3, 4), 1.0 / 12.0))

    def test_mean_axis(self, rng):
        check_gradient(lambda t: ag.mean(t, axis=0),
                       rng.standard_normal((3, 4)))

    def test_reshape(self, rng):
        check_gradient(lambda t: t.reshape((6, 2)),
                       rng.standard_normal((3, 4)))

    def test_transpose_default(self, rng):
        check_gradient(lambda t: t.T, rng.standard_normal((3, 4)))

    def test_transpose_axes(self, rng):
        check_gradient(lambda t: ag.transpose(t, (2, 0, 1)),
                       rng.standard_normal((2, 3, 4)))

    def test_getitem_slice(self, rng):
        check_gradient(lambda t: t[1:3], rng.standard_normal((4, 3)))

    def test_getitem_fancy_accumulates(self):
        t = Tensor(np.arange(3.0), requires_grad=True, dtype=np.float64)
        out = ag.take(t, np.array([0, 0, 2]))
        out.sum().backward()
        np.testing.assert_allclose(t.grad, [2.0, 0.0, 1.0])

    def test_concatenate(self, rng):
        b = rng.standard_normal((2, 3))
        check_gradient(
            lambda t: ag.concatenate([t, Tensor(b, dtype=np.float64)], axis=0),
            rng.standard_normal((2, 3)))

    def test_concatenate_axis1(self, rng):
        b = rng.standard_normal((2, 2))
        check_gradient(
            lambda t: ag.concatenate([Tensor(b, dtype=np.float64), t], axis=1),
            rng.standard_normal((2, 3)))

    def test_pad2d(self, rng):
        check_gradient(lambda t: ag.pad2d(t, 2),
                       rng.standard_normal((2, 1, 3, 3)))

    def test_pad2d_zero_is_identity(self):
        t = Tensor(np.ones((1, 1, 2, 2)))
        assert ag.pad2d(t, 0) is t

    def test_where(self, rng):
        cond = rng.random((3, 3)) > 0.5
        b = rng.standard_normal((3, 3))
        check_gradient(
            lambda t: ag.where(cond, t, Tensor(b, dtype=np.float64)),
            rng.standard_normal((3, 3)))
