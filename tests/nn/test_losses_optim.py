"""Unit tests for losses and optimizers."""

import numpy as np
import pytest

from repro.nn import SGD, Adam, Tensor, cross_entropy, get_loss, mae, mse
from repro.nn.optim import Optimizer

from tests.nn.gradcheck import check_gradient


class TestCrossEntropy:
    def test_uniform_logits_give_log_k(self):
        logits = Tensor(np.zeros((4, 10)))
        loss = cross_entropy(logits, np.zeros(4, dtype=np.int64))
        assert loss.item() == pytest.approx(np.log(10), rel=1e-5)

    def test_confident_correct_is_near_zero(self):
        logits = np.full((2, 3), -50.0)
        logits[:, 1] = 50.0
        loss = cross_entropy(Tensor(logits), np.array([1, 1]))
        assert loss.item() == pytest.approx(0.0, abs=1e-5)

    def test_confident_wrong_is_large(self):
        logits = np.full((1, 3), -50.0)
        logits[:, 1] = 50.0
        loss = cross_entropy(Tensor(logits), np.array([0]))
        assert loss.item() > 50

    def test_gradient(self, rng):
        labels = np.array([0, 2, 1])
        check_gradient(
            lambda t: cross_entropy(t, labels) * 1.0,
            rng.standard_normal((3, 4)))

    def test_gradient_is_softmax_minus_onehot_over_n(self, rng):
        z = rng.standard_normal((3, 4))
        labels = np.array([1, 0, 3])
        t = Tensor(z, requires_grad=True, dtype=np.float64)
        cross_entropy(t, labels).backward()
        e = np.exp(z - z.max(axis=1, keepdims=True))
        probs = e / e.sum(axis=1, keepdims=True)
        expected = probs.copy()
        expected[np.arange(3), labels] -= 1.0
        np.testing.assert_allclose(t.grad, expected / 3.0, rtol=1e-8)


class TestRegressionLosses:
    def test_mse_value(self):
        pred = Tensor(np.array([1.0, 3.0]))
        assert mse(pred, np.array([0.0, 0.0],
                                  dtype=np.float32)).item() == pytest.approx(5.0)

    def test_mae_value(self):
        pred = Tensor(np.array([1.0, -3.0]))
        assert mae(pred, np.array([0.0, 0.0],
                                  dtype=np.float32)).item() == pytest.approx(2.0)

    def test_mse_gradient(self, rng):
        target = rng.standard_normal((3, 4))
        check_gradient(lambda t: mse(t, Tensor(target, dtype=np.float64)) * 1.0,
                       rng.standard_normal((3, 4)))

    def test_mae_gradient_away_from_zero(self, rng):
        target = np.zeros((3, 4))
        x = rng.standard_normal((3, 4))
        x[np.abs(x) < 0.2] = 0.5
        check_gradient(lambda t: mae(t, Tensor(target, dtype=np.float64)) * 1.0, x)

    def test_get_loss_lookup(self):
        assert get_loss("mse") is mse
        assert get_loss("mae") is mae
        with pytest.raises(KeyError):
            get_loss("huber")


def _quadratic_params(rng):
    """Parameters of f(w) = ||w - target||^2 with analytic gradient."""
    target = rng.standard_normal(5)
    w = Tensor(np.zeros(5), requires_grad=True)
    return w, target


def _set_quadratic_grad(w, target):
    w.grad = 2.0 * (w.data - target).astype(np.float32)


class TestSGD:
    def test_plain_sgd_converges_on_quadratic(self, rng):
        w, target = _quadratic_params(rng)
        opt = SGD([w], lr=0.1)
        for _ in range(200):
            _set_quadratic_grad(w, target)
            opt.step()
        np.testing.assert_allclose(w.data, target, atol=1e-4)

    def test_momentum_converges_faster(self, rng):
        errors = {}
        for momentum in (0.0, 0.9):
            w, target = _quadratic_params(np.random.default_rng(3))
            opt = SGD([w], lr=0.02, momentum=momentum)
            for _ in range(50):
                _set_quadratic_grad(w, target)
                opt.step()
            errors[momentum] = np.abs(w.data - target).max()
        assert errors[0.9] < errors[0.0]

    def test_weight_decay_shrinks_weights(self):
        w = Tensor(np.ones(3), requires_grad=True)
        opt = SGD([w], lr=0.1, weight_decay=1.0)
        w.grad = np.zeros(3, dtype=np.float32)
        opt.step()
        np.testing.assert_allclose(w.data, np.full(3, 0.9), rtol=1e-6)

    def test_none_grad_skipped(self):
        w = Tensor(np.ones(3), requires_grad=True)
        opt = SGD([w], lr=0.1)
        opt.step()  # no grad set — must not crash or move
        np.testing.assert_allclose(w.data, np.ones(3))

    def test_invalid_momentum_rejected(self):
        w = Tensor(np.ones(1), requires_grad=True)
        with pytest.raises(ValueError):
            SGD([w], lr=0.1, momentum=1.5)


class TestAdam:
    def test_converges_on_quadratic(self, rng):
        w, target = _quadratic_params(rng)
        opt = Adam([w], lr=0.05)
        for _ in range(500):
            _set_quadratic_grad(w, target)
            opt.step()
        np.testing.assert_allclose(w.data, target, atol=1e-3)

    def test_first_step_size_is_lr(self):
        # With bias correction the first Adam step has magnitude ~lr.
        w = Tensor(np.zeros(1), requires_grad=True)
        opt = Adam([w], lr=0.1)
        w.grad = np.array([7.0], dtype=np.float32)
        opt.step()
        assert abs(w.data[0]) == pytest.approx(0.1, rel=1e-4)

    def test_reset_clears_state(self):
        w = Tensor(np.zeros(1), requires_grad=True)
        opt = Adam([w], lr=0.1)
        w.grad = np.array([1.0], dtype=np.float32)
        opt.step()
        opt.reset()
        assert opt._t == 0
        assert opt._m[0] is None

    def test_invalid_betas_rejected(self):
        w = Tensor(np.ones(1), requires_grad=True)
        with pytest.raises(ValueError):
            Adam([w], beta1=1.0)


class TestOptimizerValidation:
    def test_empty_params_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_nonpositive_lr_rejected(self):
        w = Tensor(np.ones(1), requires_grad=True)
        with pytest.raises(ValueError):
            Adam([w], lr=0.0)

    def test_zero_grad_clears(self):
        w = Tensor(np.ones(1), requires_grad=True)
        w.grad = np.ones(1, dtype=np.float32)
        opt = SGD([w], lr=0.1)
        opt.zero_grad()
        assert w.grad is None

    def test_base_step_not_implemented(self):
        w = Tensor(np.ones(1), requires_grad=True)
        with pytest.raises(NotImplementedError):
            Optimizer([w], lr=0.1).step()
