"""Tests for the extra activations (leaky ReLU, softplus)."""

import numpy as np
import pytest

from repro.nn import Tensor, leaky_relu, softplus

from tests.nn.gradcheck import check_gradient


class TestLeakyRelu:
    def test_positive_passthrough(self):
        x = Tensor(np.array([1.0, 2.0]), dtype=np.float64)
        np.testing.assert_allclose(leaky_relu(x).data, [1.0, 2.0])

    def test_negative_scaled(self):
        x = Tensor(np.array([-2.0]), dtype=np.float64)
        np.testing.assert_allclose(leaky_relu(x, 0.1).data, [-0.2])

    def test_gradient(self, rng):
        x = rng.standard_normal((4, 4))
        x[np.abs(x) < 0.1] = 0.5
        check_gradient(lambda t: leaky_relu(t, 0.2), x)

    def test_zero_slope_is_relu(self, rng):
        from repro.nn import relu

        x = Tensor(rng.standard_normal((3, 3)), dtype=np.float64)
        np.testing.assert_allclose(leaky_relu(x, 0.0).data, relu(x).data)


class TestSoftplus:
    def test_values(self):
        x = Tensor(np.array([0.0]), dtype=np.float64)
        assert softplus(x).data[0] == pytest.approx(np.log(2.0))

    def test_large_positive_linear(self):
        x = Tensor(np.array([50.0]), dtype=np.float64)
        assert softplus(x).data[0] == pytest.approx(50.0, rel=1e-9)

    def test_large_negative_zero(self):
        x = Tensor(np.array([-50.0]), dtype=np.float64)
        assert softplus(x).data[0] == pytest.approx(0.0, abs=1e-12)

    def test_stability_extremes(self):
        x = Tensor(np.array([-1000.0, 1000.0]), dtype=np.float64)
        out = softplus(x).data
        assert np.isfinite(out).all()

    def test_gradient(self, rng):
        check_gradient(softplus, rng.standard_normal((3, 4)))

    def test_always_positive(self, rng):
        x = Tensor(rng.standard_normal((5, 5)), dtype=np.float64)
        assert (softplus(x).data > 0).all()
