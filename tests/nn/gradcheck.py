"""Thin re-export: gradient checking now lives in :mod:`repro.nn.gradcheck`.

Kept so existing tests that do ``from tests.nn.gradcheck import
check_gradient`` (or the relative equivalent) keep working; new code
should import from ``repro.nn.gradcheck`` directly.
"""

from repro.nn.gradcheck import (  # noqa: F401
    check_gradient,
    check_gradients,
    numerical_gradient,
)

__all__ = ["check_gradient", "check_gradients", "numerical_gradient"]
