"""Finite-difference gradient checking for the autodiff engine tests."""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.nn.autograd import Tensor


def numerical_gradient(f: Callable[[np.ndarray], float], x: np.ndarray,
                       eps: float = 1e-5) -> np.ndarray:
    """Central-difference gradient of a scalar function of an ndarray."""
    x = x.astype(np.float64, copy=True)
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + eps
        f_plus = f(x)
        x[idx] = orig - eps
        f_minus = f(x)
        x[idx] = orig
        grad[idx] = (f_plus - f_minus) / (2.0 * eps)
        it.iternext()
    return grad


def check_gradient(op: Callable[[Tensor], Tensor], x: np.ndarray,
                   atol: float = 1e-6, rtol: float = 1e-4) -> None:
    """Assert that autograd and numerical gradients agree for ``op``.

    ``op`` maps a Tensor to a Tensor; the scalar under test is the sum of
    squares of the op output (smooth and sensitive to every element).
    """
    x = x.astype(np.float64)

    def scalar(arr: np.ndarray) -> float:
        out = op(Tensor(arr, dtype=np.float64))
        return float((out.data.astype(np.float64) ** 2).sum())

    t = Tensor(x, requires_grad=True, dtype=np.float64)
    out = op(t)
    loss = (out * out).sum()
    loss.backward()
    assert t.grad is not None, "no gradient reached the input"
    numeric = numerical_gradient(scalar, x)
    np.testing.assert_allclose(t.grad, numeric, atol=atol, rtol=rtol)
