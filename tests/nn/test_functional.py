"""Unit tests for the structured NN ops (conv, pooling, softmax, ...)."""

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn.autograd import Tensor

from tests.nn.gradcheck import check_gradient


class TestConvShapes:
    def test_output_size_formula(self):
        assert F.conv_output_size(28, 3, 1, 1) == 28
        assert F.conv_output_size(28, 3, 1, 0) == 26
        assert F.conv_output_size(28, 3, 2, 1) == 14
        assert F.conv_output_size(5, 5, 1, 0) == 1

    def test_same_padding(self):
        assert F.same_padding(3) == 1
        assert F.same_padding(5) == 2

    def test_same_padding_even_kernel_rejected(self):
        with pytest.raises(ValueError):
            F.same_padding(4)

    def test_forward_shape_same(self, rng):
        x = Tensor(rng.random((2, 3, 8, 8)).astype(np.float32))
        w = Tensor(rng.random((5, 3, 3, 3)).astype(np.float32))
        assert F.conv2d(x, w, padding="same").shape == (2, 5, 8, 8)

    def test_forward_shape_valid(self, rng):
        x = Tensor(rng.random((2, 3, 8, 8)).astype(np.float32))
        w = Tensor(rng.random((5, 3, 3, 3)).astype(np.float32))
        assert F.conv2d(x, w, padding=0).shape == (2, 5, 6, 6)

    def test_forward_shape_strided(self, rng):
        x = Tensor(rng.random((2, 3, 8, 8)).astype(np.float32))
        w = Tensor(rng.random((5, 3, 3, 3)).astype(np.float32))
        assert F.conv2d(x, w, stride=2, padding=1).shape == (2, 5, 4, 4)

    def test_channel_mismatch_raises(self, rng):
        x = Tensor(rng.random((1, 2, 4, 4)).astype(np.float32))
        w = Tensor(rng.random((3, 4, 3, 3)).astype(np.float32))
        with pytest.raises(ValueError):
            F.conv2d(x, w)

    def test_non_nchw_input_raises(self, rng):
        with pytest.raises(ValueError):
            F.conv2d(Tensor(rng.random((4, 4)).astype(np.float32)),
                     Tensor(rng.random((1, 1, 3, 3)).astype(np.float32)))

    def test_same_with_stride_raises(self, rng):
        x = Tensor(rng.random((1, 1, 4, 4)).astype(np.float32))
        w = Tensor(rng.random((1, 1, 3, 3)).astype(np.float32))
        with pytest.raises(ValueError):
            F.conv2d(x, w, stride=2, padding="same")

    def test_empty_output_raises(self, rng):
        x = Tensor(rng.random((1, 1, 2, 2)).astype(np.float32))
        w = Tensor(rng.random((1, 1, 5, 5)).astype(np.float32))
        with pytest.raises(ValueError):
            F.conv2d(x, w, padding=0)


class TestConvValues:
    def test_identity_kernel(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        w = np.zeros((1, 1, 3, 3), dtype=np.float32)
        w[0, 0, 1, 1] = 1.0
        out = F.conv2d(Tensor(x), Tensor(w), padding="same")
        np.testing.assert_allclose(out.data, x)

    def test_matches_manual_cross_correlation(self, rng):
        x = rng.random((1, 1, 4, 4)).astype(np.float64)
        w = rng.random((1, 1, 3, 3)).astype(np.float64)
        out = F.conv2d(Tensor(x, dtype=np.float64),
                       Tensor(w, dtype=np.float64), padding=0)
        expected = np.zeros((2, 2))
        for i in range(2):
            for j in range(2):
                expected[i, j] = (x[0, 0, i:i + 3, j:j + 3] * w[0, 0]).sum()
        np.testing.assert_allclose(out.data[0, 0], expected, rtol=1e-12)

    def test_bias_added_per_filter(self, rng):
        x = rng.random((1, 1, 4, 4)).astype(np.float32)
        w = np.zeros((2, 1, 3, 3), dtype=np.float32)
        b = np.array([1.5, -2.0], dtype=np.float32)
        out = F.conv2d(Tensor(x), Tensor(w), Tensor(b), padding="same")
        np.testing.assert_allclose(out.data[0, 0], np.full((4, 4), 1.5))
        np.testing.assert_allclose(out.data[0, 1], np.full((4, 4), -2.0))


class TestConvGradients:
    def test_grad_input_same_padding(self, rng):
        w = rng.standard_normal((4, 3, 3, 3))
        check_gradient(
            lambda t: F.conv2d(t, Tensor(w, dtype=np.float64), padding="same"),
            rng.standard_normal((2, 3, 5, 5)))

    def test_grad_input_strided(self, rng):
        w = rng.standard_normal((2, 1, 3, 3))
        check_gradient(
            lambda t: F.conv2d(t, Tensor(w, dtype=np.float64),
                               stride=2, padding=1),
            rng.standard_normal((1, 1, 6, 6)))

    def test_grad_weight(self, rng):
        x = rng.standard_normal((2, 2, 5, 5))
        check_gradient(
            lambda t: F.conv2d(Tensor(x, dtype=np.float64), t, padding="same"),
            rng.standard_normal((3, 2, 3, 3)))

    def test_grad_bias(self, rng):
        x = rng.standard_normal((2, 1, 4, 4))
        w = rng.standard_normal((3, 1, 3, 3))
        bias = Tensor(rng.standard_normal(3), requires_grad=True,
                      dtype=np.float64)
        out = F.conv2d(Tensor(x, dtype=np.float64),
                       Tensor(w, dtype=np.float64), bias, padding="same")
        out.sum().backward()
        np.testing.assert_allclose(bias.grad, np.full(3, 2 * 4 * 4), rtol=1e-10)


class TestPooling:
    def test_avg_pool_values(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        out = F.avg_pool2d(Tensor(x), 2)
        np.testing.assert_allclose(
            out.data[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_avg_pool_gradient(self, rng):
        check_gradient(lambda t: F.avg_pool2d(t, 2),
                       rng.standard_normal((2, 2, 4, 4)))

    def test_avg_pool_indivisible_raises(self, rng):
        with pytest.raises(ValueError):
            F.avg_pool2d(Tensor(rng.random((1, 1, 5, 5)).astype(np.float32)), 2)

    def test_max_pool_values(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        out = F.max_pool2d(Tensor(x), 2)
        np.testing.assert_allclose(out.data[0, 0], [[5, 7], [13, 15]])

    def test_max_pool_gradient_routes_to_argmax(self):
        x = np.array([[[[1.0, 2.0], [3.0, 4.0]]]])
        t = Tensor(x, requires_grad=True, dtype=np.float64)
        F.max_pool2d(t, 2).sum().backward()
        np.testing.assert_allclose(
            t.grad, [[[[0.0, 0.0], [0.0, 1.0]]]])

    def test_max_pool_gradient_numeric(self, rng):
        x = rng.standard_normal((2, 2, 4, 4))
        # Perturb to break ties so the subgradient is unique.
        x += np.linspace(0, 0.1, x.size).reshape(x.shape)
        check_gradient(lambda t: F.max_pool2d(t, 2), x)

    def test_max_pool_indivisible_raises(self, rng):
        with pytest.raises(ValueError):
            F.max_pool2d(Tensor(rng.random((1, 1, 6, 4)).astype(np.float32)), 4)


class TestUpsample:
    def test_values(self):
        x = np.array([[[[1.0, 2.0], [3.0, 4.0]]]], dtype=np.float32)
        out = F.upsample2d(Tensor(x), 2)
        np.testing.assert_allclose(
            out.data[0, 0],
            [[1, 1, 2, 2], [1, 1, 2, 2], [3, 3, 4, 4], [3, 3, 4, 4]])

    def test_factor_one_is_identity(self):
        t = Tensor(np.ones((1, 1, 2, 2)))
        assert F.upsample2d(t, 1) is t

    def test_invalid_factor_raises(self):
        with pytest.raises(ValueError):
            F.upsample2d(Tensor(np.ones((1, 1, 2, 2))), 0)

    def test_gradient(self, rng):
        check_gradient(lambda t: F.upsample2d(t, 2),
                       rng.standard_normal((2, 3, 3, 3)))

    def test_round_trip_with_avg_pool(self, rng):
        x = rng.random((2, 1, 4, 4)).astype(np.float32)
        up = F.upsample2d(Tensor(x), 2)
        down = F.avg_pool2d(up, 2)
        np.testing.assert_allclose(down.data, x, rtol=1e-6)


class TestSoftmaxFamily:
    def test_softmax_rows_sum_to_one(self, rng):
        out = F.softmax(Tensor(rng.standard_normal((5, 10)).astype(np.float32)))
        np.testing.assert_allclose(out.data.sum(axis=1), np.ones(5), rtol=1e-5)

    def test_softmax_stable_for_large_logits(self):
        out = F.softmax(Tensor(np.array([[1000.0, 0.0]]), dtype=np.float64))
        np.testing.assert_allclose(out.data, [[1.0, 0.0]], atol=1e-12)

    def test_softmax_shift_invariance(self, rng):
        z = rng.standard_normal((3, 6))
        a = F.softmax(Tensor(z, dtype=np.float64)).data
        b = F.softmax(Tensor(z + 100.0, dtype=np.float64)).data
        np.testing.assert_allclose(a, b, rtol=1e-9)

    def test_log_softmax_matches_log_of_softmax(self, rng):
        z = rng.standard_normal((4, 7))
        ls = F.log_softmax(Tensor(z, dtype=np.float64)).data
        s = F.softmax(Tensor(z, dtype=np.float64)).data
        np.testing.assert_allclose(ls, np.log(s), rtol=1e-9)

    def test_logsumexp_matches_numpy(self, rng):
        z = rng.standard_normal((4, 7))
        out = F.logsumexp(Tensor(z, dtype=np.float64), axis=1)
        expected = np.log(np.exp(z).sum(axis=1))
        np.testing.assert_allclose(out.data, expected, rtol=1e-9)

    def test_softmax_gradient(self, rng):
        check_gradient(lambda t: F.softmax(t, axis=-1),
                       rng.standard_normal((3, 5)))

    def test_log_softmax_gradient(self, rng):
        check_gradient(lambda t: F.log_softmax(t, axis=-1),
                       rng.standard_normal((3, 5)))

    def test_logsumexp_gradient(self, rng):
        check_gradient(lambda t: F.logsumexp(t, axis=1),
                       rng.standard_normal((3, 5)))


class TestIndexingHelpers:
    def test_select_index_values(self):
        x = Tensor(np.arange(12, dtype=np.float32).reshape(3, 4))
        out = F.select_index(x, np.array([0, 2, 3]))
        np.testing.assert_allclose(out.data, [0.0, 6.0, 11.0])

    def test_select_index_gradient_scatter(self):
        t = Tensor(np.zeros((2, 3)), requires_grad=True, dtype=np.float64)
        F.select_index(t, np.array([1, 0])).sum().backward()
        np.testing.assert_allclose(t.grad, [[0, 1, 0], [1, 0, 0]])

    def test_select_index_shape_validation(self):
        with pytest.raises(ValueError):
            F.select_index(Tensor(np.zeros((2, 3))), np.array([0]))
        with pytest.raises(ValueError):
            F.select_index(Tensor(np.zeros(3)), np.array([0, 1, 2]))

    def test_one_hot(self):
        out = F.one_hot(np.array([0, 2]), 3)
        np.testing.assert_allclose(out, [[1, 0, 0], [0, 0, 1]])

    def test_one_hot_out_of_range(self):
        with pytest.raises(ValueError):
            F.one_hot(np.array([3]), 3)
        with pytest.raises(ValueError):
            F.one_hot(np.array([-1]), 3)

    def test_one_hot_requires_1d(self):
        with pytest.raises(ValueError):
            F.one_hot(np.zeros((2, 2), dtype=int), 3)
