"""Unit tests for weight initializers."""

import numpy as np
import pytest

from repro.nn import init


class TestFanComputation:
    def test_dense_shape(self):
        assert init._fan_in_out((20, 30)) == (20, 30)

    def test_conv_shape(self):
        # (out, in, kh, kw): fan_in = in * kh * kw
        assert init._fan_in_out((8, 4, 3, 3)) == (36, 72)

    def test_unsupported_shape(self):
        with pytest.raises(ValueError):
            init._fan_in_out((3,))


class TestDistributions:
    def test_glorot_uniform_within_limit(self, rng):
        w = init.glorot_uniform((100, 200), rng)
        limit = np.sqrt(6.0 / 300)
        assert np.abs(w).max() <= limit
        assert w.dtype == np.float32

    def test_glorot_normal_std(self, rng):
        w = init.glorot_normal((500, 500), rng)
        assert w.std() == pytest.approx(np.sqrt(2.0 / 1000), rel=0.1)

    def test_he_uniform_within_limit(self, rng):
        w = init.he_uniform((100, 50), rng)
        assert np.abs(w).max() <= np.sqrt(6.0 / 100)

    def test_he_normal_std(self, rng):
        w = init.he_normal((1000, 100), rng)
        assert w.std() == pytest.approx(np.sqrt(2.0 / 1000), rel=0.1)

    def test_zeros(self):
        np.testing.assert_allclose(init.zeros((3, 4)), 0.0)

    def test_deterministic_given_seed(self):
        a = init.glorot_uniform((5, 5), np.random.default_rng(1))
        b = init.glorot_uniform((5, 5), np.random.default_rng(1))
        np.testing.assert_allclose(a, b)

    def test_conv_shapes_supported(self, rng):
        w = init.he_uniform((8, 4, 3, 3), rng)
        assert w.shape == (8, 4, 3, 3)


class TestLookup:
    def test_get_initializer(self):
        assert init.get_initializer("he_uniform") is init.he_uniform

    def test_unknown_name_lists_options(self):
        with pytest.raises(KeyError, match="glorot_uniform"):
            init.get_initializer("nope")
