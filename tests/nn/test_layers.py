"""Unit tests for Module / layer containers."""

import numpy as np
import pytest

from repro.nn import (
    AvgPool2D,
    Conv2D,
    Dense,
    Flatten,
    MaxPool2D,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
    Tensor,
    UpSample2D,
    describe,
)
from repro.nn.layers import Module


def _mlp(rng):
    return Sequential(Dense(4, 8, rng=rng), ReLU(), Dense(8, 3, rng=rng))


class TestModuleRegistration:
    def test_parameters_collected_recursively(self, rng):
        model = _mlp(rng)
        # two weights + two biases
        assert len(model.parameters()) == 4

    def test_named_parameters_have_unique_paths(self, rng):
        model = _mlp(rng)
        names = [n for n, _ in model.named_parameters()]
        assert len(names) == len(set(names))
        assert "layer0.weight" in names
        assert "layer2.bias" in names

    def test_num_parameters(self, rng):
        model = Dense(4, 8, rng=rng)
        assert model.num_parameters() == 4 * 8 + 8

    def test_parameters_require_grad(self, rng):
        assert all(p.requires_grad for p in _mlp(rng).parameters())

    def test_register_parameter_type_check(self):
        m = Module()
        with pytest.raises(TypeError):
            m.register_parameter("w", np.ones(3))

    def test_register_module_type_check(self):
        m = Module()
        with pytest.raises(TypeError):
            m.register_module("sub", object())

    def test_attribute_assignment_registers_module(self, rng):
        class Net(Module):
            def __init__(self):
                super().__init__()
                self.encoder = Dense(4, 2, rng=rng)

            def forward(self, x):
                return self.encoder(x)

        net = Net()
        assert len(net.parameters()) == 2
        assert dict(net.named_parameters())["encoder.weight"].shape == (4, 2)


class TestTrainEvalAndGrad:
    def test_train_eval_propagate(self, rng):
        model = _mlp(rng)
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())

    def test_zero_grad_clears_all(self, rng):
        model = _mlp(rng)
        out = model(Tensor(rng.random((2, 4)).astype(np.float32)))
        out.sum().backward()
        assert any(p.grad is not None for p in model.parameters())
        model.zero_grad()
        assert all(p.grad is None for p in model.parameters())


class TestStateDict:
    def test_round_trip(self, rng):
        model = _mlp(rng)
        state = model.state_dict()
        clone = _mlp(np.random.default_rng(99))
        clone.load_state_dict(state)
        x = rng.random((3, 4)).astype(np.float32)
        np.testing.assert_allclose(model(Tensor(x)).data,
                                   clone(Tensor(x)).data, rtol=1e-6)

    def test_state_dict_returns_copies(self, rng):
        model = Dense(2, 2, rng=rng)
        state = model.state_dict()
        state["weight"][:] = 0.0
        assert not np.allclose(model.weight.data, 0.0)

    def test_missing_key_raises(self, rng):
        model = _mlp(rng)
        state = model.state_dict()
        state.pop("layer0.weight")
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_unexpected_key_raises(self, rng):
        model = _mlp(rng)
        state = model.state_dict()
        state["bogus"] = np.ones(2)
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_shape_mismatch_raises(self, rng):
        model = _mlp(rng)
        state = model.state_dict()
        state["layer0.weight"] = np.ones((2, 2))
        with pytest.raises(ValueError):
            model.load_state_dict(state)


class TestLayerForward:
    def test_dense_shapes(self, rng):
        layer = Dense(5, 3, rng=rng)
        out = layer(Tensor(rng.random((7, 5)).astype(np.float32)))
        assert out.shape == (7, 3)

    def test_dense_no_bias(self, rng):
        layer = Dense(5, 3, rng=rng, bias=False)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_conv_layer_shapes(self, rng):
        layer = Conv2D(3, 6, 3, padding="same", rng=rng)
        out = layer(Tensor(rng.random((2, 3, 8, 8)).astype(np.float32)))
        assert out.shape == (2, 6, 8, 8)

    def test_flatten(self, rng):
        out = Flatten()(Tensor(rng.random((2, 3, 4, 4)).astype(np.float32)))
        assert out.shape == (2, 48)

    def test_activation_layers(self, rng):
        x = Tensor(rng.standard_normal((2, 3)).astype(np.float32))
        assert (ReLU()(x).data >= 0).all()
        assert ((Sigmoid()(x).data > 0) & (Sigmoid()(x).data < 1)).all()
        assert (np.abs(Tanh()(x).data) < 1).all()

    def test_pool_and_upsample_layers(self, rng):
        x = Tensor(rng.random((1, 2, 4, 4)).astype(np.float32))
        assert MaxPool2D(2)(x).shape == (1, 2, 2, 2)
        assert AvgPool2D(2)(x).shape == (1, 2, 2, 2)
        assert UpSample2D(2)(x).shape == (1, 2, 8, 8)

    def test_sequential_iteration_and_len(self, rng):
        model = _mlp(rng)
        assert len(model) == 3
        assert isinstance(list(model)[1], ReLU)

    def test_call_accepts_ndarray(self, rng):
        model = _mlp(rng)
        out = model(rng.random((2, 4)).astype(np.float32))
        assert out.shape == (2, 3)

    def test_end_to_end_gradient_reaches_input(self, rng):
        model = Sequential(
            Conv2D(1, 2, 3, padding="same", rng=rng), ReLU(),
            MaxPool2D(2), Flatten(), Dense(2 * 2 * 2, 3, rng=rng))
        x = Tensor(rng.random((1, 1, 4, 4)).astype(np.float32),
                   requires_grad=True)
        model(x).sum().backward()
        assert x.grad is not None
        assert x.grad.shape == (1, 1, 4, 4)
        assert np.abs(x.grad).sum() > 0


class TestDescribe:
    def test_describe_sequential(self, rng):
        text = describe(_mlp(rng))
        assert "Dense(4 -> 8)" in text
        assert "ReLU()" in text

    def test_describe_shows_param_counts(self, rng):
        text = describe(Dense(4, 8, rng=rng))
        assert "40 params" in text
