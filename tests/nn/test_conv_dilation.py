"""Tests for dilated (atrous) convolution support."""

import numpy as np
import pytest

from repro.nn import Tensor
from repro.nn import functional as F

from tests.nn.gradcheck import check_gradient


class TestDilatedConvShapes:
    def test_output_size_with_dilation(self, rng):
        x = Tensor(rng.random((1, 1, 9, 9)).astype(np.float32))
        w = Tensor(rng.random((1, 1, 3, 3)).astype(np.float32))
        # effective kernel 5 → output 9 - 5 + 1 = 5
        out = F.conv2d(x, w, padding=0, dilation=2)
        assert out.shape == (1, 1, 5, 5)

    def test_same_padding_accounts_for_dilation(self, rng):
        x = Tensor(rng.random((1, 1, 8, 8)).astype(np.float32))
        w = Tensor(rng.random((1, 1, 3, 3)).astype(np.float32))
        out = F.conv2d(x, w, padding="same", dilation=2)
        assert out.shape == (1, 1, 8, 8)

    def test_dilation_one_matches_plain_conv(self, rng):
        x = Tensor(rng.random((2, 2, 6, 6)).astype(np.float64),
                   dtype=np.float64)
        w = Tensor(rng.random((3, 2, 3, 3)).astype(np.float64),
                   dtype=np.float64)
        a = F.conv2d(x, w, padding=1, dilation=1)
        b = F.conv2d(x, w, padding=1)
        np.testing.assert_allclose(a.data, b.data, rtol=1e-12)

    def test_invalid_dilation(self, rng):
        x = Tensor(rng.random((1, 1, 4, 4)).astype(np.float32))
        w = Tensor(rng.random((1, 1, 3, 3)).astype(np.float32))
        with pytest.raises(ValueError):
            F.conv2d(x, w, dilation=0)


class TestDilatedConvValues:
    def test_matches_manual_dilated_cross_correlation(self, rng):
        x = rng.random((1, 1, 7, 7)).astype(np.float64)
        w = rng.random((1, 1, 3, 3)).astype(np.float64)
        out = F.conv2d(Tensor(x, dtype=np.float64),
                       Tensor(w, dtype=np.float64), padding=0, dilation=2)
        expected = np.zeros((3, 3))
        for i in range(3):
            for j in range(3):
                patch = x[0, 0, i:i + 5:2, j:j + 5:2]
                expected[i, j] = (patch * w[0, 0]).sum()
        np.testing.assert_allclose(out.data[0, 0], expected, rtol=1e-12)

    def test_center_tap_identity(self):
        # A dilated kernel whose only nonzero tap is the centre acts as
        # identity under same padding.
        x = np.arange(64, dtype=np.float32).reshape(1, 1, 8, 8) / 64
        w = np.zeros((1, 1, 3, 3), dtype=np.float32)
        w[0, 0, 1, 1] = 1.0
        out = F.conv2d(Tensor(x), Tensor(w), padding="same", dilation=3)
        np.testing.assert_allclose(out.data, x, rtol=1e-6)


class TestDilatedConvGradients:
    def test_grad_input(self, rng):
        w = rng.standard_normal((2, 1, 3, 3))
        check_gradient(
            lambda t: F.conv2d(t, Tensor(w, dtype=np.float64),
                               padding=2, dilation=2),
            rng.standard_normal((1, 1, 7, 7)))

    def test_grad_weight(self, rng):
        x = rng.standard_normal((1, 2, 7, 7))
        check_gradient(
            lambda t: F.conv2d(Tensor(x, dtype=np.float64), t,
                               padding=0, dilation=2),
            rng.standard_normal((2, 2, 3, 3)))

    def test_grad_with_stride_and_dilation(self, rng):
        w = rng.standard_normal((1, 1, 2, 2))
        check_gradient(
            lambda t: F.conv2d(t, Tensor(w, dtype=np.float64),
                               stride=2, padding=0, dilation=2),
            rng.standard_normal((1, 1, 8, 8)))
