"""Unit tests for Dropout and BatchNorm2D."""

import numpy as np
import pytest

from repro.nn import BatchNorm2D, Dropout, Tensor
from repro.nn.autograd import no_grad

from tests.nn.gradcheck import numerical_gradient


class TestDropout:
    def test_eval_mode_is_identity(self, rng):
        layer = Dropout(0.5)
        layer.eval()
        x = Tensor(rng.random((4, 8)).astype(np.float32))
        np.testing.assert_allclose(layer(x).data, x.data)

    def test_train_mode_zeroes_and_scales(self):
        layer = Dropout(0.5, seed=0)
        layer.train()
        x = Tensor(np.ones((200, 50), dtype=np.float32))
        out = layer(x).data
        values = np.unique(np.round(out, 4))
        assert set(values) <= {0.0, 2.0}
        # Survivor fraction near keep probability.
        assert (out > 0).mean() == pytest.approx(0.5, abs=0.05)

    def test_expected_value_preserved(self):
        layer = Dropout(0.3, seed=1)
        layer.train()
        x = Tensor(np.ones((500, 40), dtype=np.float32))
        assert layer(x).data.mean() == pytest.approx(1.0, abs=0.05)

    def test_p_zero_identity_in_train(self, rng):
        layer = Dropout(0.0)
        layer.train()
        x = Tensor(rng.random((3, 5)).astype(np.float32))
        np.testing.assert_allclose(layer(x).data, x.data)

    def test_gradient_masks_match_forward(self):
        layer = Dropout(0.5, seed=2)
        layer.train()
        x = Tensor(np.ones((10, 10), dtype=np.float32), requires_grad=True)
        out = layer(x)
        out.sum().backward()
        # Gradient nonzero exactly where forward survived.
        np.testing.assert_array_equal(x.grad > 0, out.data > 0)

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            Dropout(1.0)
        with pytest.raises(ValueError):
            Dropout(-0.1)


class TestBatchNorm2D:
    def test_train_normalizes_batch(self, rng):
        layer = BatchNorm2D(3)
        layer.train()
        x = Tensor((rng.random((8, 3, 4, 4)) * 5 + 2).astype(np.float32))
        out = layer(x).data
        assert np.abs(out.mean(axis=(0, 2, 3))).max() < 1e-4
        np.testing.assert_allclose(out.std(axis=(0, 2, 3)), 1.0, atol=1e-2)

    def test_running_stats_updated(self, rng):
        layer = BatchNorm2D(2, momentum=1.0)  # copy batch stats directly
        layer.train()
        x = Tensor((rng.random((8, 2, 4, 4)) + 3).astype(np.float32))
        layer(x)
        np.testing.assert_allclose(layer.running_mean,
                                   x.data.mean(axis=(0, 2, 3)), rtol=1e-5)

    def test_eval_uses_running_stats(self, rng):
        layer = BatchNorm2D(2, momentum=1.0)
        layer.train()
        x = Tensor(rng.random((8, 2, 4, 4)).astype(np.float32))
        layer(x)
        layer.eval()
        # With running stats frozen, a constant input maps deterministically.
        y = Tensor(np.zeros((2, 2, 4, 4), dtype=np.float32))
        out1 = layer(y).data
        out2 = layer(y).data
        np.testing.assert_allclose(out1, out2)

    def test_gamma_beta_trainable(self, rng):
        layer = BatchNorm2D(2)
        assert len(layer.parameters()) == 2
        layer.train()
        x = Tensor(rng.random((4, 2, 3, 3)).astype(np.float32),
                   requires_grad=True)
        layer(x).sum().backward()
        assert layer.gamma.grad is not None
        assert layer.beta.grad is not None
        # beta gradient is just the count of summed elements.
        np.testing.assert_allclose(layer.beta.grad, 4 * 3 * 3, rtol=1e-5)

    def test_train_backward_matches_numeric(self, rng):
        layer = BatchNorm2D(2)
        layer.train()
        x64 = rng.standard_normal((3, 2, 2, 2))

        def scalar(arr):
            out = layer(Tensor(arr, dtype=np.float64))
            return float((out.data ** 2).sum())

        t = Tensor(x64, requires_grad=True, dtype=np.float64)
        out = layer(t)
        (out * out).sum().backward()
        numeric = numerical_gradient(scalar, x64.copy())
        np.testing.assert_allclose(t.grad, numeric, atol=1e-4, rtol=1e-3)

    def test_shape_validation(self, rng):
        layer = BatchNorm2D(3)
        with pytest.raises(ValueError):
            layer(Tensor(rng.random((2, 2, 4, 4)).astype(np.float32)))

    def test_param_validation(self):
        with pytest.raises(ValueError):
            BatchNorm2D(0)
        with pytest.raises(ValueError):
            BatchNorm2D(2, momentum=0.0)
