"""Kernel backend registry, equivalence, plumbing and edge-case tests."""

import warnings

import numpy as np
import pytest

from repro.nn import Tensor
from repro.nn.backend import (
    BufferedBackend,
    KernelBackend,
    available_backends,
    get_backend,
    get_default_backend_name,
    register_backend,
    set_default_backend,
    use_backend,
)
from repro.nn.functional import _col2im, _im2col, conv2d, conv_output_size
from repro.nn.gradcheck import backend_equivalence_matrix, combo_check


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

class TestRegistry:
    def test_builtin_backends_registered(self):
        names = available_backends()
        assert "numpy" in names
        assert "fft" in names
        assert "buffered" in names

    def test_get_backend_by_name(self):
        assert get_backend("numpy").name == "numpy"
        assert get_backend("fft").name == "fft"

    def test_get_backend_default_resolution(self):
        assert get_backend(None).name == get_default_backend_name()

    def test_unknown_name_raises_with_available_list(self):
        with pytest.raises(ValueError, match="unknown nn backend"):
            get_backend("cuda")
        with pytest.raises(ValueError, match="numpy"):
            get_backend("cuda")

    def test_register_requires_kernel_backend_instance(self):
        with pytest.raises(TypeError, match="KernelBackend"):
            register_backend("bogus", object())  # type: ignore[arg-type]

    def test_duplicate_registration_rejected_without_replace(self):
        with pytest.raises(ValueError, match="already registered"):
            register_backend("numpy", KernelBackend())

    def test_replace_and_restore(self):
        original = get_backend("numpy")

        class Probe(KernelBackend):
            name = "numpy"

        try:
            register_backend("numpy", Probe(), replace=True)
            assert isinstance(get_backend("numpy"), Probe)
        finally:
            register_backend("numpy", original, replace=True)

    def test_third_party_backend_roundtrip(self):
        class Custom(KernelBackend):
            name = "custom-test"

        try:
            register_backend("custom-test", Custom())
            assert "custom-test" in available_backends()
            x = Tensor(np.random.default_rng(0).standard_normal(
                (1, 1, 5, 5)).astype(np.float32), requires_grad=True)
            w = Tensor(np.random.default_rng(1).standard_normal(
                (2, 1, 3, 3)).astype(np.float32), requires_grad=True)
            y = conv2d(x, w, backend="custom-test")
            y.sum().backward()
            assert x.grad is not None
        finally:
            from repro.nn import backend as backend_mod
            with backend_mod._REGISTRY_LOCK:
                backend_mod._REGISTRY.pop("custom-test", None)


class TestSelection:
    def test_use_backend_scopes_and_restores(self):
        before = get_default_backend_name()
        with use_backend("fft"):
            assert get_default_backend_name() == "fft"
            with use_backend("buffered"):
                assert get_default_backend_name() == "buffered"
            assert get_default_backend_name() == "fft"
        assert get_default_backend_name() == before

    def test_use_backend_none_is_noop(self):
        before = get_default_backend_name()
        with use_backend(None):
            assert get_default_backend_name() == before

    def test_use_backend_validates_eagerly(self):
        with pytest.raises(ValueError, match="unknown nn backend"):
            with use_backend("no-such-backend"):
                pass  # pragma: no cover

    def test_set_default_backend_returns_previous(self):
        prev = set_default_backend("buffered")
        try:
            assert get_default_backend_name() == "buffered"
        finally:
            set_default_backend(prev)

    def test_set_default_backend_validates(self):
        with pytest.raises(ValueError, match="unknown nn backend"):
            set_default_backend("no-such-backend")


# ----------------------------------------------------------------------
# Interchangeability: exhaustive gradcheck sweep + equivalence matrix
# ----------------------------------------------------------------------

class TestInterchangeability:
    def test_combo_check_conv2d_all_backends(self):
        rng = np.random.default_rng(0)
        xs = [rng.standard_normal((2, 2, 6, 6)),
              rng.standard_normal((1, 1, 5, 7))]
        ws = [rng.standard_normal((3, 2, 3, 3)) * 0.5]
        checked = combo_check(
            lambda x, w, **kw: conv2d(x, w, **kw),
            xs[:1], ws, stride=[1, 2], padding=[0, 1], dilation=[1, 2])
        # 1 x * 1 w * 2 strides * 2 paddings * 2 dilations * >=3 backends,
        # minus consistently-rejected overhang combinations.
        assert checked >= 12

    def test_combo_check_rejections_consistent(self):
        # kernel 5 on unpadded size-3 input must raise under EVERY
        # backend (combo_check asserts cross-backend consistency).
        rng = np.random.default_rng(1)
        checked = combo_check(
            lambda x, w, **kw: conv2d(x, w, **kw),
            [rng.standard_normal((1, 1, 3, 3))],
            [rng.standard_normal((1, 1, 5, 5))],
            padding=[0, 1, 2])
        # only padding=1 (size 5 exactly) and padding=2 survive
        assert checked == 2 * len(available_backends())

    def test_equivalence_matrix_bounds(self):
        rng = np.random.default_rng(2)
        x = rng.standard_normal((2, 3, 8, 8)).astype(np.float32)
        w = (rng.standard_normal((4, 3, 3, 3)) / 5).astype(np.float32)
        matrix = backend_equivalence_matrix(
            lambda x, w: conv2d(x, w, padding=1), x, w)
        assert matrix["numpy"]["out"] == 0.0
        assert matrix["buffered"]["out"] == 0.0      # bitwise contract
        assert matrix["buffered"]["grad0"] == 0.0
        assert matrix["fft"]["out"] > 0.0            # tolerance contract
        fft = get_backend("fft")
        scale = float(np.abs(x).max())
        assert matrix["fft"]["out"] <= fft.rtol * 10 * scale

    def test_float32_stays_float32_on_every_backend(self):
        rng = np.random.default_rng(3)
        x = rng.standard_normal((1, 2, 6, 6)).astype(np.float32)
        w = rng.standard_normal((2, 2, 3, 3)).astype(np.float32)
        for name in available_backends():
            xt = Tensor(x, requires_grad=True, dtype=np.float32)
            wt = Tensor(w, requires_grad=True, dtype=np.float32)
            y = conv2d(xt, wt, padding=1, backend=name)
            y.sum().backward()
            assert y.data.dtype == np.float32, name
            assert xt.grad.dtype == np.float32, name
            assert wt.grad.dtype == np.float32, name


# ----------------------------------------------------------------------
# Deprecated seams and edge handling
# ----------------------------------------------------------------------

class TestDeprecatedSeams:
    def test_im2col_shim_warns_and_matches_backend(self):
        x = np.arange(32, dtype=np.float32).reshape(1, 2, 4, 4)
        with pytest.warns(DeprecationWarning, match="_im2col is deprecated"):
            cols = _im2col(x, 3, 3, 1)
        expected = get_backend("numpy").im2col(x, 3, 3, 1)
        np.testing.assert_array_equal(cols, expected)

    def test_col2im_shim_warns_and_matches_backend(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        cols = get_backend("numpy").im2col(x, 3, 3, 1)
        with pytest.warns(DeprecationWarning, match="_col2im is deprecated"):
            back = _col2im(cols, x.shape, 3, 3, 1)
        expected = get_backend("numpy").col2im(cols, x.shape, 3, 3, 1)
        np.testing.assert_array_equal(back, expected)

    def test_backend_primitives_do_not_warn(self):
        x = np.zeros((1, 1, 4, 4), dtype=np.float32)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            get_backend("numpy").im2col(x, 3, 3, 1)


class TestEdgeHandling:
    def test_conv_output_size_ok(self):
        assert conv_output_size(28, 3, 1, 1) == 28
        assert conv_output_size(5, 5, 1, 0) == 1

    def test_conv_output_size_overhang_raises(self):
        with pytest.raises(ValueError, match="does not fit"):
            conv_output_size(3, 5, 1, 0)
        with pytest.raises(ValueError, match="does not fit"):
            conv_output_size(2, 3, 2, 0)

    @pytest.mark.parametrize("backend", ["numpy", "fft", "buffered"])
    def test_conv2d_overhang_raises_before_dispatch(self, backend):
        x = Tensor(np.zeros((1, 1, 3, 3), dtype=np.float32))
        w = Tensor(np.zeros((1, 1, 5, 5), dtype=np.float32))
        with pytest.raises(ValueError, match="does not fit"):
            conv2d(x, w, backend=backend)

    def test_dilated_overhang_raises(self):
        # effective kernel (3-1)*3+1 = 7 > padded size 5+0
        x = Tensor(np.zeros((1, 1, 5, 5), dtype=np.float32))
        w = Tensor(np.zeros((1, 1, 3, 3), dtype=np.float32))
        with pytest.raises(ValueError, match="does not fit"):
            conv2d(x, w, dilation=3)


# ----------------------------------------------------------------------
# Buffered backend pool behaviour
# ----------------------------------------------------------------------

class TestBufferedPool:
    def _dispatch(self, be, needs_grad=False):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((1, 2, 6, 6)).astype(np.float32)
        w = rng.standard_normal((2, 2, 3, 3)).astype(np.float32)
        return be.conv2d_forward(x, w, None, 1, 1, 1, needs_grad)

    def test_pool_populates_and_clears(self):
        be = get_backend("buffered")
        be.clear()
        assert be.pool_size() == 0
        self._dispatch(be)
        assert be.pool_size() > 0
        be.clear()
        assert be.pool_size() == 0

    def test_pool_reuses_buffers_across_dispatches(self):
        be = get_backend("buffered")
        be.clear()
        self._dispatch(be)
        size_after_first = be.pool_size()
        self._dispatch(be)
        assert be.pool_size() == size_after_first

    def test_results_owned_not_scratch(self):
        be = get_backend("buffered")
        be.clear()
        out1, _ = self._dispatch(be)
        copy1 = out1.copy()
        self._dispatch(be)
        np.testing.assert_array_equal(out1, copy1)

    def test_max_buffers_safety_valve(self):
        be = BufferedBackend()
        for i in range(be.MAX_BUFFERS + 5):
            be._scratch("probe", (i + 1,), np.float32)
        assert be.pool_size() <= be.MAX_BUFFERS + 1


# ----------------------------------------------------------------------
# CLI / profile / worker plumbing
# ----------------------------------------------------------------------

class TestPlumbing:
    def test_cli_parses_nn_backend(self):
        from repro.experiments.__main__ import build_parser

        parser = build_parser()
        args = parser.parse_args(["run", "table3", "--nn-backend", "fft"])
        assert args.nn_backend == "fft"
        args = parser.parse_args(["run", "table3"])
        assert args.nn_backend is None

    def test_cli_rejects_unknown_backend(self):
        from repro.experiments.__main__ import build_parser

        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["run", "table3", "--nn-backend", "cuda"])

    def test_resolve_prefers_flag_over_profile(self):
        from repro.experiments.__main__ import _resolve_nn_backend
        from repro.experiments.config import PAPER, QUICK

        prev = get_default_backend_name()
        try:
            assert _resolve_nn_backend(None, PAPER) == "fft"
            assert _resolve_nn_backend(None, QUICK) == "numpy"
            assert _resolve_nn_backend("buffered", PAPER) == "buffered"
        finally:
            set_default_backend(prev)

    def test_profile_field_defaults(self):
        from repro.experiments.config import PAPER, QUICK, SMOKE

        assert PAPER.nn_backend == "fft"
        assert QUICK.nn_backend == "numpy"
        assert SMOKE.nn_backend == "numpy"

    def test_context_rejects_unknown_backend(self):
        from repro.experiments.config import SMOKE
        from repro.experiments.context import ExperimentContext

        with pytest.raises(ValueError, match="unknown nn backend"):
            ExperimentContext("digits", profile=SMOKE, nn_backend="cuda")

    def test_attack_cache_key_stable_for_numpy_but_split_for_fft(self):
        from repro.experiments.config import SMOKE
        from repro.experiments.context import ExperimentContext

        ctx = ExperimentContext("digits", profile=SMOKE)
        # avoid training a classifier just to fingerprint the key
        ctx._clf_fingerprint = "test-fingerprint"
        spec = {"attack": "ead", "variant": "default", "beta": 0.01}
        base = ctx._attack_key(spec)
        ctx.nn_backend = "numpy"
        assert ctx._attack_key(spec) == base
        ctx.nn_backend = "fft"
        assert ctx._attack_key(spec) != base

    def test_workers_inherit_active_backend(self):
        """jobs>1 fan-out must run under the caller's backend selection."""
        from repro.runtime.executor import ParallelExecutor

        def probe(_):
            return get_default_backend_name()

        ex = ParallelExecutor(jobs=2)
        with use_backend("buffered"):
            results = ex.map(probe, [0, 1, 2, 3])
        assert results == ["buffered"] * 4

    def test_serial_map_inherits_backend_too(self):
        from repro.runtime.executor import ParallelExecutor

        def probe(_):
            return get_default_backend_name()

        ex = ParallelExecutor(jobs=1)
        with use_backend("fft"):
            assert ex.map(probe, [0, 1]) == ["fft", "fft"]

    def test_worker_inheritance_is_deterministic(self):
        """Same work, same backend, any fan-out: identical results."""
        from repro.runtime.executor import ParallelExecutor

        rng = np.random.default_rng(0)
        x = rng.standard_normal((1, 1, 6, 6)).astype(np.float32)
        w = rng.standard_normal((2, 1, 3, 3)).astype(np.float32)

        def work(seed):
            y = conv2d(Tensor(x), Tensor(w), padding=1)
            return float(y.data.sum())

        with use_backend("buffered"):
            serial = ParallelExecutor(jobs=1).map(work, [0, 1, 2])
            fanned = ParallelExecutor(jobs=2).map(work, [0, 1, 2])
        assert serial == fanned


# ----------------------------------------------------------------------
# Dispatch metering
# ----------------------------------------------------------------------

class TestMetering:
    def test_dispatches_counted_per_backend(self):
        from repro.nn.backend import kernel_stats

        before = kernel_stats().get("fft", {}).get("dispatches", 0)
        x = Tensor(np.zeros((1, 1, 6, 6), dtype=np.float32))
        w = Tensor(np.zeros((1, 1, 3, 3), dtype=np.float32))
        conv2d(x, w, padding=1, backend="fft")
        after = kernel_stats()["fft"]["dispatches"]
        assert after == before + 1

    def test_kernel_seconds_accumulate(self):
        from repro.nn.backend import kernel_stats

        x = Tensor(np.zeros((1, 1, 6, 6), dtype=np.float32))
        w = Tensor(np.zeros((1, 1, 3, 3), dtype=np.float32))
        conv2d(x, w, padding=1, backend="buffered")
        stats = kernel_stats()["buffered"]
        assert stats["seconds"] >= 0.0
        assert stats["dispatches"] >= 1

    def test_obs_counters_track_dispatches(self):
        from repro.obs import counter

        total = counter("nn/conv_dispatches")
        per_backend = counter("nn/conv_dispatches/numpy")
        t0, b0 = total.value, per_backend.value
        x = Tensor(np.zeros((1, 1, 6, 6), dtype=np.float32))
        w = Tensor(np.zeros((1, 1, 3, 3), dtype=np.float32))
        conv2d(x, w, padding=1, backend="numpy")
        assert counter("nn/conv_dispatches").value == t0 + 1
        assert counter("nn/conv_dispatches/numpy").value == b0 + 1

    def test_flush_kernel_events_idempotent(self):
        from repro.nn.backend import flush_kernel_events

        x = Tensor(np.zeros((1, 1, 6, 6), dtype=np.float32))
        w = Tensor(np.zeros((1, 1, 3, 3), dtype=np.float32))
        conv2d(x, w, padding=1, backend="numpy")
        flush_kernel_events()
        flush_kernel_events()  # deltas only; must not double-count/raise
