"""Tests for Trainer's schedule / early-stopping / clipping integration."""

import numpy as np
import pytest

from repro.nn import ConstantLR, Dense, ReLU, Sequential, StepLR, Trainer


def _data(rng, n=200, d=5):
    x = rng.standard_normal((n, d)).astype(np.float32)
    y = (x[:, 0] > 0).astype(np.int64)
    return x, y


class TestLRScheduleIntegration:
    def test_schedule_applied_each_epoch(self, rng):
        x, y = _data(rng)
        model = Sequential(Dense(5, 8, rng=rng), ReLU(), Dense(8, 2, rng=rng))
        trainer = Trainer(model, lr=1.0, seed=0)
        sched = StepLR(1.0, step_size=1, gamma=0.5)
        trainer.fit(x, y, epochs=3, batch_size=64, lr_schedule=sched,
                    verbose=False)
        # After epoch 3 the optimizer holds the epoch-2 (0-indexed) lr.
        assert trainer.optimizer.lr == pytest.approx(0.25)

    def test_constant_schedule_is_noop(self, rng):
        x, y = _data(rng)
        model = Sequential(Dense(5, 4, rng=rng), Dense(4, 2, rng=rng))
        trainer = Trainer(model, lr=1e-3, seed=0)
        trainer.fit(x, y, epochs=2, lr_schedule=ConstantLR(1e-3),
                    verbose=False)
        assert trainer.optimizer.lr == pytest.approx(1e-3)


class TestEarlyStopping:
    def test_stops_when_val_loss_stalls(self, rng):
        x, y = _data(rng)
        model = Sequential(Dense(5, 4, rng=rng), Dense(4, 2, rng=rng))
        # Zero-capacity learning: lr so tiny the val loss never improves.
        trainer = Trainer(model, lr=1e-12, seed=0)
        history = trainer.fit(x, y, epochs=30, batch_size=64,
                              x_val=x[:40], y_val=y[:40],
                              early_stopping_patience=2, verbose=False)
        assert len(history.epochs) <= 5

    def test_runs_to_completion_when_improving(self, rng):
        x, y = _data(rng)
        model = Sequential(Dense(5, 16, rng=rng), ReLU(),
                           Dense(16, 2, rng=rng))
        trainer = Trainer(model, lr=1e-2, seed=0)
        history = trainer.fit(x, y, epochs=5, batch_size=64,
                              x_val=x[:40], y_val=y[:40],
                              early_stopping_patience=4, verbose=False)
        assert len(history.epochs) == 5

    def test_requires_validation_data(self, rng):
        x, y = _data(rng)
        model = Sequential(Dense(5, 2, rng=rng))
        trainer = Trainer(model, lr=1e-3)
        with pytest.raises(ValueError):
            trainer.fit(x, y, epochs=1, early_stopping_patience=1,
                        verbose=False)


class TestGradClipIntegration:
    def test_training_with_clipping_converges(self, rng):
        x, y = _data(rng)
        model = Sequential(Dense(5, 16, rng=rng), ReLU(),
                           Dense(16, 2, rng=rng))
        trainer = Trainer(model, lr=1e-2, seed=0)
        history = trainer.fit(x, y, epochs=10, batch_size=32,
                              grad_clip_norm=1.0, verbose=False)
        assert history.epochs[-1].train_loss < history.epochs[0].train_loss
