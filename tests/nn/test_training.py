"""Unit tests for the training loop and prediction helpers."""

import numpy as np
import pytest

from repro.nn import (
    Dense,
    ReLU,
    Sequential,
    Tensor,
    Trainer,
    accuracy,
    iterate_minibatches,
    predict_labels,
    predict_logits,
)


def _toy_classification(rng, n=256, d=6):
    x = rng.standard_normal((n, d)).astype(np.float32)
    y = (x[:, 0] + x[:, 1] > 0).astype(np.int64)
    return x, y


class TestIterateMinibatches:
    def test_covers_all_rows_once(self, rng):
        x = np.arange(10, dtype=np.float32)[:, None]
        seen = np.concatenate(
            [xb[:, 0] for xb, _ in iterate_minibatches(x, None, 3, rng=rng)])
        assert sorted(seen.tolist()) == list(range(10))

    def test_batch_sizes(self, rng):
        x = np.zeros((10, 2), dtype=np.float32)
        sizes = [len(xb) for xb, _ in iterate_minibatches(x, None, 4, rng=rng)]
        assert sizes == [4, 4, 2]

    def test_labels_stay_aligned(self, rng):
        x = np.arange(20, dtype=np.float32)[:, None]
        y = np.arange(20)
        for xb, yb in iterate_minibatches(x, y, 7, rng=rng):
            np.testing.assert_allclose(xb[:, 0], yb)

    def test_no_shuffle_preserves_order(self):
        x = np.arange(6, dtype=np.float32)[:, None]
        first, _ = next(iterate_minibatches(x, None, 6, shuffle=False))
        np.testing.assert_allclose(first[:, 0], np.arange(6))

    def test_shuffle_is_seeded(self):
        x = np.arange(32, dtype=np.float32)[:, None]
        a = [xb for xb, _ in iterate_minibatches(
            x, None, 8, rng=np.random.default_rng(5))]
        b = [xb for xb, _ in iterate_minibatches(
            x, None, 8, rng=np.random.default_rng(5))]
        for xa, xb in zip(a, b):
            np.testing.assert_allclose(xa, xb)

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            list(iterate_minibatches(np.zeros((4, 1)), np.zeros(3), 2))

    def test_bad_batch_size_raises(self):
        with pytest.raises(ValueError):
            list(iterate_minibatches(np.zeros((4, 1)), None, 0))


class TestTrainer:
    def test_classification_learns(self, rng):
        x, y = _toy_classification(rng)
        model = Sequential(Dense(6, 16, rng=rng), ReLU(), Dense(16, 2, rng=rng))
        trainer = Trainer(model, loss="cross_entropy", lr=1e-2, seed=0)
        history = trainer.fit(x, y, epochs=15, batch_size=32, verbose=False)
        assert accuracy(model, x, y) > 0.95
        assert history.epochs[-1].train_loss < history.epochs[0].train_loss

    def test_autoencoder_mode_uses_input_as_target(self, rng):
        x = rng.random((128, 4)).astype(np.float32)
        model = Sequential(Dense(4, 2, rng=rng), Dense(2, 4, rng=rng))
        trainer = Trainer(model, loss="mse", lr=1e-2, seed=0)
        history = trainer.fit(x, None, epochs=20, batch_size=32, verbose=False)
        assert history.final_train_loss < 0.2

    def test_validation_metrics_recorded(self, rng):
        x, y = _toy_classification(rng)
        model = Sequential(Dense(6, 8, rng=rng), ReLU(), Dense(8, 2, rng=rng))
        trainer = Trainer(model, lr=1e-2, seed=0)
        history = trainer.fit(x, y, epochs=2, batch_size=32,
                              x_val=x[:50], y_val=y[:50], verbose=False)
        assert history.epochs[-1].val_loss is not None
        assert history.epochs[-1].val_accuracy is not None
        assert 0.0 <= history.best_val_accuracy <= 1.0

    def test_model_left_in_eval_mode(self, rng):
        x, y = _toy_classification(rng)
        model = Sequential(Dense(6, 4, rng=rng), Dense(4, 2, rng=rng))
        Trainer(model, lr=1e-2).fit(x, y, epochs=1, verbose=False)
        assert not model.training

    def test_custom_loss_callable(self, rng):
        from repro.nn.losses import mse

        x = rng.random((64, 3)).astype(np.float32)
        model = Dense(3, 3, rng=rng)
        trainer = Trainer(model, loss=mse, lr=1e-2)
        trainer.fit(x, None, epochs=1, verbose=False)
        assert trainer.loss_name == "mse"

    def test_evaluate_loss_weighted_by_batch(self, rng):
        x = rng.random((130, 3)).astype(np.float32)
        model = Dense(3, 3, rng=rng)
        trainer = Trainer(model, loss="mse")
        loss = trainer.evaluate_loss(x, None, batch_size=64)
        assert np.isfinite(loss)


class TestPredictionHelpers:
    def test_predict_logits_matches_direct_forward(self, rng):
        model = Dense(4, 3, rng=rng)
        x = rng.random((10, 4)).astype(np.float32)
        batched = predict_logits(model, x, batch_size=3)
        direct = model(Tensor(x)).data
        np.testing.assert_allclose(batched, direct, rtol=1e-6)

    def test_predict_labels_argmax(self, rng):
        model = Dense(4, 3, rng=rng)
        x = rng.random((10, 4)).astype(np.float32)
        labels = predict_labels(model, x)
        assert labels.shape == (10,)
        np.testing.assert_array_equal(labels,
                                      predict_logits(model, x).argmax(1))

    def test_accuracy_bounds(self, rng):
        model = Dense(4, 2, rng=rng)
        x = rng.random((20, 4)).astype(np.float32)
        y = rng.integers(0, 2, 20)
        acc = accuracy(model, x, y)
        assert 0.0 <= acc <= 1.0

    def test_predict_logits_empty_input(self, rng):
        model = Dense(4, 3, rng=rng)
        out = predict_logits(model, np.zeros((0, 4), dtype=np.float32))
        assert out.size == 0
