"""InferenceService tests: verdicts, equality with offline MagNet, errors.

Most tests use the fast toy MagNet from :mod:`repro.serving.smoke`
(untrained dense models, no disk, ~ms); the offline-equality test also
runs against the session-scoped *trained* tiny models to cover the real
pipeline.
"""

import threading
import time

import numpy as np
import pytest

from repro.defenses.detectors import ReconstructionDetector
from repro.defenses.magnet import MagNet
from repro.defenses.reformer import Reformer
from repro.serving import (
    Client,
    InferenceService,
    QueueFullError,
    ServingClosedError,
    ServingConfig,
)
from repro.serving.smoke import DIM, build_toy_magnet


@pytest.fixture(scope="module")
def toy_magnet():
    return build_toy_magnet(seed=3)


def _inputs(n, seed=0):
    return np.random.default_rng(seed).random((n, DIM)).astype(np.float32)


class TestPredict:
    def test_single_predict_round_trip(self, toy_magnet):
        with InferenceService(toy_magnet, ServingConfig(max_batch=4,
                                                        max_wait_ms=1)) as s:
            verdict = s.predict(_inputs(1)[0], timeout=10)
        assert isinstance(verdict.label, int)
        assert isinstance(verdict.detected, bool)
        assert set(verdict.detector_scores) == {d.name
                                                for d in toy_magnet.detectors}
        assert verdict.batch_size >= 1
        assert verdict.queue_ms >= 0

    def test_burst_is_batched(self, toy_magnet):
        config = ServingConfig(max_batch=8, max_wait_ms=20, max_queue=64)
        with InferenceService(toy_magnet, config) as s:
            verdicts = s.predict_many(list(_inputs(16)), timeout=10)
        assert len(verdicts) == 16
        # A 16-burst against max_batch=8 must produce multi-request batches.
        assert max(v.batch_size for v in verdicts) > 1
        assert s.stats.batches < 16

    def test_client_frontend(self, toy_magnet):
        with InferenceService(toy_magnet, ServingConfig(max_wait_ms=1)) as s:
            client = Client(s)
            assert client.healthy()
            verdict = client.predict(_inputs(1)[0], timeout=10)
            assert verdict.request_id
            snap = client.stats()
        assert snap["requests"]["completed"] == 1
        assert snap["config"]["max_batch"] == 32

    def test_shape_mismatch_rejected(self, toy_magnet):
        with InferenceService(toy_magnet, ServingConfig(max_wait_ms=1)) as s:
            s.predict(_inputs(1)[0], timeout=10)
            with pytest.raises(ValueError, match="shape"):
                s.submit(np.zeros(DIM + 1, dtype=np.float32))

    def test_stats_snapshot_shape(self, toy_magnet):
        with InferenceService(toy_magnet, ServingConfig(max_wait_ms=1)) as s:
            s.predict_many(list(_inputs(4)), timeout=10)
            snap = s.stats_snapshot()
        assert snap["requests"]["completed"] == 4
        assert snap["requests"]["rejected"] == 0
        assert snap["batches"]["count"] >= 1
        for series in ("queue", "total"):
            p = snap["latency_ms"][series]
            assert p["p50"] <= p["p95"] <= p["p99"]


class TestEquality:
    """Serving verdicts == offline MagNet on the same batch composition."""

    def _assert_equal(self, magnet, xs):
        # Controlled coalescing: submit everything BEFORE starting the
        # worker with max_batch >= N, so the service runs one batch whose
        # stacked array is exactly the offline input.  (Per-row results
        # are not bitwise stable across different BLAS batch shapes, so
        # equality is defined over identical batch composition.)
        n = len(xs)
        service = InferenceService(
            magnet, ServingConfig(max_batch=n, max_wait_ms=10_000,
                                  max_queue=2 * n))
        futures = [service.submit(x) for x in xs]
        service.start()
        try:
            verdicts = [f.result(timeout=60) for f in futures]
        finally:
            service.stop()
        offline = magnet.decide(np.stack(xs))
        for i, v in enumerate(verdicts):
            assert v.batch_size == n
            assert v.label == int(offline.labels_reformed[i])
            assert v.label_raw == int(offline.labels_raw[i])
            assert v.detected == bool(offline.detected[i])
            for d, det in enumerate(magnet.detectors):
                assert v.detector_flags[det.name] == bool(
                    offline.detector_flags[d, i])

    def test_toy_magnet_bitwise(self, toy_magnet):
        self._assert_equal(toy_magnet, list(_inputs(12, seed=5)))

    def test_trained_magnet_bitwise(self, tiny_classifier, tiny_autoencoder,
                                    tiny_splits):
        det = ReconstructionDetector(tiny_autoencoder, norm=1)
        magnet = MagNet(tiny_classifier, [det], Reformer(tiny_autoencoder),
                        name="tiny-serving")
        magnet.calibrate(tiny_splits.val.x[:100], fpr_total=0.02)
        self._assert_equal(magnet, list(tiny_splits.test.x[:8]))


class TestBackpressure:
    def test_queue_full_rejects_and_counts(self, toy_magnet):
        # Workers never started → the queue cannot drain.
        service = InferenceService(
            toy_magnet, ServingConfig(max_batch=4, max_wait_ms=10_000,
                                      max_queue=2))
        service.submit(_inputs(1)[0])
        service.submit(_inputs(1)[0])
        with pytest.raises(QueueFullError):
            service.submit(_inputs(1)[0])
        assert service.stats_snapshot()["requests"]["rejected"] == 1
        service.stop()

    def test_submit_after_stop_raises(self, toy_magnet):
        service = InferenceService(toy_magnet, ServingConfig(max_wait_ms=1))
        service.start()
        service.stop()
        with pytest.raises(ServingClosedError):
            service.submit(_inputs(1)[0])

    def test_stop_drains_queued_requests(self, toy_magnet):
        service = InferenceService(
            toy_magnet, ServingConfig(max_batch=4, max_wait_ms=10_000,
                                      max_queue=64))
        futures = [service.submit(x) for x in _inputs(3)]
        service.start()
        service.stop()                 # close + drain + join
        for f in futures:
            assert f.result(timeout=1).label >= 0


class _ExplodingMagnet:
    """decide_batch always raises; detectors list for verdict naming."""

    detectors = ()

    def decide_batch(self, x):
        raise RuntimeError("model exploded")


class TestErrors:
    def test_model_failure_fails_futures_not_worker(self, toy_magnet):
        service = InferenceService(_ExplodingMagnet(),
                                   ServingConfig(max_batch=2, max_wait_ms=1))
        service.start()
        future = service.submit(_inputs(1)[0])
        with pytest.raises(RuntimeError, match="exploded"):
            future.result(timeout=10)
        # The worker survived the failed batch and the service stays up.
        assert service.healthy()
        assert service.stats_snapshot()["requests"]["errors"] == 1
        service.stop()

    def test_healthy_lifecycle(self, toy_magnet):
        service = InferenceService(toy_magnet, ServingConfig(max_wait_ms=1))
        assert not service.healthy()      # not started
        service.start()
        assert service.healthy()
        assert service.uptime_s >= 0
        service.stop()
        assert not service.healthy()

    def test_double_start_raises(self, toy_magnet):
        service = InferenceService(toy_magnet)
        service.start()
        with pytest.raises(RuntimeError, match="started"):
            service.start()
        service.stop()


class TestConcurrentClients:
    def test_many_threads_all_served(self, toy_magnet):
        config = ServingConfig(max_batch=8, max_wait_ms=2, max_queue=256)
        xs = _inputs(48, seed=9)
        results = [None] * len(xs)
        with InferenceService(toy_magnet, config) as service:
            def run(i):
                results[i] = service.predict(xs[i], timeout=30)

            threads = [threading.Thread(target=run, args=(i,))
                       for i in range(len(xs))]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30)
            snap = service.stats_snapshot()
        assert all(r is not None for r in results)
        assert snap["requests"]["completed"] == len(xs)
        assert snap["batches"]["mean_size"] > 1.0   # batching engaged


class TestEmptyWindowPercentiles:
    """An idle service reports null percentiles, not fabricated zeros."""

    def test_snapshot_before_any_traffic(self, toy_magnet):
        service = InferenceService(toy_magnet, ServingConfig(max_wait_ms=1))
        try:
            snap = service.stats_snapshot()
        finally:
            service.stop()
        for series in ("queue", "total"):
            assert snap["latency_ms"][series] == {
                "p50": None, "p95": None, "p99": None}
        assert snap["requests"]["completed"] == 0

    def test_metrics_gauges_skip_null_percentiles(self, toy_magnet):
        service = InferenceService(toy_magnet, ServingConfig(max_wait_ms=1))
        try:
            gauges = service.metrics_gauges()
        finally:
            service.stop()
        assert not any("latency" in name for name in gauges)
        assert all(v is not None for v in gauges.values())

    def test_percentiles_populate_after_traffic(self, toy_magnet):
        with InferenceService(toy_magnet, ServingConfig(max_wait_ms=1)) as s:
            s.predict(_inputs(1)[0], timeout=10)
            snap = s.stats_snapshot()
        assert snap["latency_ms"]["total"]["p50"] is not None


class TestAdaptiveWaitService:
    def test_policy_loop_shrinks_wait_when_idle(self, toy_magnet):
        config = ServingConfig(max_batch=8, max_wait_ms=8.0, max_queue=64,
                               adaptive_wait=True, min_wait_ms=0.25)
        with InferenceService(toy_magnet, config) as service:
            # A few requests, then idleness: AIMD decrease should walk
            # the live wait down from the configured 8 ms ceiling.
            service.predict_many(list(_inputs(4)), timeout=10)
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                if service._batcher.max_wait_s * 1000.0 <= 1.0:
                    break
                time.sleep(0.05)
            assert service._batcher.max_wait_s * 1000.0 <= 1.0
            assert service.adaptive is not None
            assert service.adaptive.adjustments >= 1
