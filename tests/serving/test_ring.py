"""Shared-memory slot ring and heartbeat board unit tests.

Exercises the SPSC transport contract in-process (producer and consumer
on the same mapping): publish ordering, zero-copy payload views, slot
reuse after release, full-ring and oversized-message behavior, the
cooperative close flag, and pickling-as-reattach for worker handoff.
"""

import pickle

import numpy as np
import pytest

from repro.serving.ring import (
    KIND_ERROR,
    KIND_PICKLE,
    KIND_RAW,
    HeartbeatBoard,
    RingError,
    RingSlotTooSmall,
    SlotRing,
)

pytestmark = pytest.mark.tier1


@pytest.fixture()
def ring():
    r = SlotRing(slots=4, slot_bytes=4096)
    yield r
    r.close()


class TestRoundTrip:
    def test_raw_array_round_trip_is_bitwise(self, ring):
        x = np.random.default_rng(0).random((8, 16)).astype(np.float32)
        assert ring.try_push(KIND_RAW, 7, b"meta", x)
        msg = ring.try_pop()
        assert msg is not None
        assert (msg.kind, msg.batch_id, msg.meta) == (KIND_RAW, 7, b"meta")
        got = msg.array((8, 16), np.float32)
        np.testing.assert_array_equal(got, x)
        del got
        msg.release()

    def test_multi_part_payload_concatenates(self, ring):
        a = np.arange(4, dtype=np.int64)
        b = np.arange(6, dtype=np.float32)
        assert ring.try_push(KIND_RAW, 1, b"", [a, b])
        msg = ring.try_pop()
        np.testing.assert_array_equal(msg.array((4,), np.int64), a)
        np.testing.assert_array_equal(
            msg.array((6,), np.float32, offset=a.nbytes), b)
        msg.release()

    def test_pickle_kind_payload_bytes(self, ring):
        blob = pickle.dumps({"answer": 42})
        assert ring.try_push(KIND_PICKLE, 2, b"", blob)
        msg = ring.try_pop()
        assert msg.kind == KIND_PICKLE
        assert pickle.loads(msg.payload_bytes()) == {"answer": 42}
        msg.release()

    def test_error_kind_meta_only(self, ring):
        assert ring.try_push(KIND_ERROR, 3, b"boom")
        msg = ring.try_pop()
        assert msg.kind == KIND_ERROR
        assert msg.meta == b"boom"
        msg.release()

    def test_fifo_order(self, ring):
        for i in range(3):
            assert ring.try_push(KIND_RAW, i, b"", b"x")
        seen = []
        while True:
            msg = ring.try_pop()
            if msg is None:
                break
            seen.append(msg.batch_id)
            msg.release()
        assert seen == [0, 1, 2]


class TestCapacity:
    def test_full_ring_returns_false_until_release(self, ring):
        for i in range(ring.slots):
            assert ring.try_push(KIND_RAW, i, b"", b"p")
        assert not ring.try_push(KIND_RAW, 99, b"", b"p")
        msg = ring.try_pop()
        msg.release()                       # frees exactly one slot
        assert ring.try_push(KIND_RAW, 99, b"", b"p")

    def test_slot_pinned_until_release(self, ring):
        for i in range(ring.slots):
            ring.try_push(KIND_RAW, i, b"", b"p")
        msg = ring.try_pop()                # popped but NOT released
        assert not ring.try_push(KIND_RAW, 99, b"", b"p")
        msg.release()
        assert ring.try_push(KIND_RAW, 99, b"", b"p")

    def test_oversized_message_raises(self, ring):
        big = np.zeros(ring.slot_bytes, dtype=np.uint8)
        with pytest.raises(RingSlotTooSmall):
            ring.try_push(KIND_RAW, 1, b"meta", big)

    def test_empty_ring_pops_none(self, ring):
        assert ring.try_pop() is None

    def test_released_message_rejects_reads(self, ring):
        ring.try_push(KIND_RAW, 1, b"", np.zeros(4, dtype=np.float32))
        msg = ring.try_pop()
        msg.release()
        with pytest.raises(RingError):
            msg.array((4,), np.float32)
        with pytest.raises(RingError):
            msg.payload_bytes()
        msg.release()                       # idempotent

    def test_wraparound_many_cycles(self, ring):
        for round_ in range(3 * ring.slots):
            x = np.full(8, float(round_), dtype=np.float32)
            assert ring.try_push(KIND_RAW, round_, b"", x)
            msg = ring.try_pop()
            np.testing.assert_array_equal(msg.array((8,), np.float32), x)
            msg.release()


class TestLifecycle:
    def test_close_flag_visible_to_peer(self, ring):
        assert not ring.peer_closed
        ring.mark_closed()
        assert ring.peer_closed

    def test_pickle_reattaches_same_segment(self, ring):
        x = np.arange(16, dtype=np.float32)
        ring.try_push(KIND_RAW, 5, b"", x)
        attached = pickle.loads(pickle.dumps(ring))
        try:
            assert attached.name == ring.name
            assert not attached._owner       # attach side must not unlink
            msg = attached.try_pop()
            np.testing.assert_array_equal(msg.array((16,), np.float32), x)
            msg.release()
        finally:
            attached.close()

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            SlotRing(slots=0, slot_bytes=64)
        with pytest.raises(ValueError):
            SlotRing(slots=1, slot_bytes=0)


class TestHeartbeatBoard:
    def test_beat_and_age(self):
        board = HeartbeatBoard(workers=2)
        try:
            assert board.age_s(0) == float("inf")   # never beat
            board.beat(0, now=100.0)
            assert board.last(0) == 100.0
            assert board.age_s(0, now=101.5) == pytest.approx(1.5)
            assert board.age_s(1) == float("inf")   # untouched slot
            board.clear(0)
            assert board.age_s(0) == float("inf")
        finally:
            board.close()

    def test_pickle_reattach_shares_stamps(self):
        board = HeartbeatBoard(workers=1)
        attached = pickle.loads(pickle.dumps(board))
        try:
            attached.beat(0, now=7.0)
            assert board.last(0) == 7.0
        finally:
            attached.close()
            board.close()
