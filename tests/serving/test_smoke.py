"""The CI smoke entry point must pass as a test too."""

from repro.serving.smoke import build_toy_magnet, main


def test_smoke_main_passes():
    assert main(["--requests", "8", "--concurrency", "2"]) == 0


def test_toy_magnet_is_calibrated():
    magnet = build_toy_magnet(seed=1)
    assert all(d.threshold is not None for d in magnet.detectors)
    assert magnet.reformer is not None
