"""Unit tests for the micro-batching scheduler (no models involved)."""

import threading
import time
from concurrent.futures import Future

import numpy as np
import pytest

from repro.serving import (
    MicroBatcher,
    QueueFullError,
    Request,
    ServingClosedError,
)


def _request(i=0):
    return Request(x=np.zeros(4, dtype=np.float32), id=f"t{i}",
                   future=Future(), enqueued_at=time.monotonic())


class TestFlushOnSize:
    def test_full_batch_flushes_immediately(self):
        b = MicroBatcher(max_batch=4, max_wait_ms=10_000, max_queue=16)
        for i in range(4):
            b.submit(_request(i))
        t0 = time.monotonic()
        batch = b.next_batch(timeout=5)
        # max_wait is 10 s, yet a size-triggered flush returns at once.
        assert time.monotonic() - t0 < 1.0
        assert [r.id for r in batch] == ["t0", "t1", "t2", "t3"]

    def test_oversubmit_splits_into_max_batch_chunks(self):
        b = MicroBatcher(max_batch=3, max_wait_ms=10_000, max_queue=16)
        for i in range(7):
            b.submit(_request(i))
        sizes = [len(b.next_batch(timeout=1)) for _ in range(2)]
        assert sizes == [3, 3]
        b.close()
        assert len(b.next_batch(timeout=1)) == 1   # closed → drain remainder

    def test_fifo_order_preserved(self):
        b = MicroBatcher(max_batch=8, max_wait_ms=10_000, max_queue=16)
        for i in range(8):
            b.submit(_request(i))
        assert [r.id for r in b.next_batch(timeout=1)] == [
            f"t{i}" for i in range(8)]


class TestFlushOnTimeout:
    def test_partial_batch_flushes_after_max_wait(self):
        b = MicroBatcher(max_batch=64, max_wait_ms=30, max_queue=16)
        b.submit(_request(0))
        t0 = time.monotonic()
        batch = b.next_batch(timeout=5)
        elapsed = time.monotonic() - t0
        assert [r.id for r in batch] == ["t0"]
        # Flushed by deadline, not by size; allow generous scheduler slop.
        assert 0.01 <= elapsed < 2.0

    def test_zero_wait_flushes_instantly(self):
        b = MicroBatcher(max_batch=64, max_wait_ms=0, max_queue=16)
        b.submit(_request(0))
        assert len(b.next_batch(timeout=1)) == 1

    def test_empty_poll_times_out_with_empty_list(self):
        b = MicroBatcher(max_batch=4, max_wait_ms=5, max_queue=16)
        t0 = time.monotonic()
        assert b.next_batch(timeout=0.05) == []
        assert time.monotonic() - t0 < 2.0

    def test_consumer_woken_by_late_submit(self):
        b = MicroBatcher(max_batch=2, max_wait_ms=10_000, max_queue=16)
        got = []

        def consume():
            got.append(b.next_batch(timeout=5))

        t = threading.Thread(target=consume)
        t.start()
        b.submit(_request(0))
        b.submit(_request(1))          # completes the batch → wakes consumer
        t.join(timeout=5)
        assert not t.is_alive()
        assert [r.id for r in got[0]] == ["t0", "t1"]


class TestAdmissionControl:
    def test_rejects_when_full(self):
        b = MicroBatcher(max_batch=4, max_wait_ms=10_000, max_queue=2)
        b.submit(_request(0))
        b.submit(_request(1))
        with pytest.raises(QueueFullError):
            b.submit(_request(2))
        assert b.submitted == 2
        assert b.rejected == 1

    def test_drain_reopens_admission(self):
        b = MicroBatcher(max_batch=2, max_wait_ms=10_000, max_queue=2)
        b.submit(_request(0))
        b.submit(_request(1))
        assert len(b.next_batch(timeout=1)) == 2
        b.submit(_request(2))          # queue drained → accepted again
        assert len(b) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            MicroBatcher(max_batch=0)
        with pytest.raises(ValueError):
            MicroBatcher(max_wait_ms=-1)
        with pytest.raises(ValueError):
            MicroBatcher(max_queue=0)


class TestShutdown:
    def test_submit_after_close_raises(self):
        b = MicroBatcher()
        b.close()
        with pytest.raises(ServingClosedError):
            b.submit(_request())

    def test_close_drains_then_signals_none(self):
        b = MicroBatcher(max_batch=8, max_wait_ms=10_000, max_queue=16)
        b.submit(_request(0))
        b.close()
        assert len(b.next_batch(timeout=1)) == 1   # partial batch drains
        assert b.next_batch(timeout=0.05) is None  # then the exit signal

    def test_close_wakes_blocked_consumer(self):
        b = MicroBatcher()
        got = []

        def consume():
            got.append(b.next_batch(timeout=10))

        t = threading.Thread(target=consume)
        t.start()
        time.sleep(0.05)
        b.close()
        t.join(timeout=5)
        assert not t.is_alive()
        assert got == [None]
