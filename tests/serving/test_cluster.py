"""Multi-process cluster integration tests.

Each test boots a real worker fleet (OS processes + shared-memory
rings) around the deterministic toy zoo, so the suite covers the
contracts the serving tier is sold on: routed multi-tenant round trips,
bitwise equivalence with the offline pipeline, crash recovery without
dropping accepted requests, graceful drain, and tiered shedding at the
cluster submit path.
"""

import dataclasses
import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.serving import (
    ClusterConfig,
    ClusterService,
    ServingConfig,
    ShedError,
    UnknownModelError,
    serve_in_thread,
)
from repro.serving.smoke import DIM, build_toy_zoo

pytestmark = pytest.mark.tier1


def _inputs(n, seed=0):
    rng = np.random.default_rng(seed)
    return rng.random((n, DIM)).astype(np.float32)


def _specs(**kwargs):
    kwargs.setdefault("n_models", 2)
    return build_toy_zoo(**kwargs)


class TestRoundTrip:
    def test_routed_predicts_and_stats(self):
        specs = _specs()
        with ClusterService(specs, ClusterConfig(workers=2)) as cluster:
            assert cluster.wait_ready(timeout=60)
            assert cluster.supports_routing
            assert cluster.model_ids() == ["toy-0", "toy-1"]
            xs = _inputs(8)
            verdicts = [cluster.predict(xs[i], timeout=60,
                                        model=f"toy-{i % 2}",
                                        priority="interactive")
                        for i in range(8)]
            assert all(isinstance(v.label, int) for v in verdicts)
            assert all(v.batch_size >= 1 for v in verdicts)
            snap = cluster.stats_snapshot()
            assert snap["requests"]["completed"] == 8
            assert set(snap["models"]) == {"toy-0", "toy-1"}
            assert snap["cluster"]["alive"] == 2
            assert snap["healthy"]

    def test_unknown_model_and_bad_shape_rejected(self):
        with ClusterService(_specs(), ClusterConfig(workers=1)) as cluster:
            assert cluster.wait_ready(timeout=60)
            with pytest.raises(UnknownModelError) as err:
                cluster.submit(_inputs(1)[0], model="toy-9")
            assert "toy-9" in str(err.value)
            assert "toy-0" in str(err.value)
            with pytest.raises(ValueError, match="shape"):
                cluster.submit(np.zeros(DIM + 1, dtype=np.float32),
                               model="toy-0")

    def test_default_model_used_when_unrouted(self):
        with ClusterService(_specs(), ClusterConfig(workers=1),
                            default_model="toy-1") as cluster:
            assert cluster.wait_ready(timeout=60)
            v = cluster.predict(_inputs(1)[0], timeout=60)
            assert v.label >= 0
            snap = cluster.stats_snapshot()
            assert snap["models"]["toy-1"]["requests"]["completed"] == 1


class TestOfflineEquivalence:
    def test_bitwise_identical_per_model(self):
        """Cluster verdicts == offline decide_batch, bit for bit.

        Batch composition is pinned: all n requests per model are queued
        before the workers start with max_batch=n, so each tenant
        flushes exactly one batch whose stacked input equals the offline
        batch (per-row BLAS results are not stable across batch shapes,
        so pinning is required for an exact-equality assertion).
        """
        n = 12
        specs = [dataclasses.replace(
            spec, config=ServingConfig(max_batch=n, max_wait_ms=60_000,
                                       max_queue=4 * n))
            for spec in _specs()]
        xs = _inputs(n, seed=42)
        cluster = ClusterService(specs, ClusterConfig(workers=2))
        futures = {spec.model_id: [cluster.submit(x, model=spec.model_id)
                                   for x in xs]
                   for spec in specs}
        cluster.start()
        try:
            verdicts = {mid: [f.result(timeout=120) for f in fs]
                        for mid, fs in futures.items()}
        finally:
            cluster.stop()

        for spec in specs:
            magnet = spec.build()
            offline = magnet.decide_batch(np.stack(xs))
            for i, v in enumerate(verdicts[spec.model_id]):
                assert v.label == int(offline.labels_reformed[i])
                assert v.label_raw == int(offline.labels_raw[i])
                assert v.detected == bool(offline.detected[i])
                for d, det in enumerate(magnet.detectors):
                    assert (v.detector_flags[det.name]
                            == bool(offline.detector_flags[d, i]))
                    assert (v.detector_scores[det.name]
                            == float(offline.detector_scores[d, i]))


class TestCrashRecovery:
    def test_worker_kill_loses_no_accepted_requests(self):
        xs = _inputs(120, seed=9)
        with ClusterService(
                _specs(max_queue=512),
                ClusterConfig(workers=2,
                              supervise_interval_s=0.02)) as cluster:
            assert cluster.wait_ready(timeout=60)
            futures = []
            for i, x in enumerate(xs):
                if i == 40:
                    assert cluster.kill_worker(0)
                futures.append(cluster.submit(x, model=f"toy-{i % 2}"))
            verdicts = [f.result(timeout=120) for f in futures]
            assert len(verdicts) == 120
            snap = cluster.stats_snapshot()
            assert snap["cluster"]["restarts"] >= 1
            assert snap["requests"]["errors"] == 0
            assert snap["requests"]["completed"] == 120
            # The replacement worker is back in rotation.
            assert cluster.wait_ready(timeout=60)
            assert snap["cluster"]["workers"] == 2


class TestGracefulDrain:
    def test_stop_drains_queued_work(self):
        xs = _inputs(24, seed=3)
        cluster = ClusterService(_specs(max_queue=128),
                                 ClusterConfig(workers=2))
        cluster.start()
        try:
            assert cluster.wait_ready(timeout=60)
            futures = [cluster.submit(x, model=f"toy-{i % 2}")
                       for i, x in enumerate(xs)]
        finally:
            cluster.stop(drain=True)
        # Every accepted future resolved during drain, none errored.
        assert all(f.done() for f in futures)
        assert all(f.exception() is None for f in futures)

    def test_submit_after_stop_rejected(self):
        from repro.serving import ServingClosedError

        cluster = ClusterService(_specs(), ClusterConfig(workers=1))
        cluster.start()
        cluster.wait_ready(timeout=60)
        cluster.stop()
        with pytest.raises(ServingClosedError):
            cluster.submit(_inputs(1)[0], model="toy-0")


class TestTieredShedding:
    def test_background_sheds_under_queue_pressure(self):
        # Workers never started: nothing drains, so queue depth is
        # exactly the number of accepted submits and the tier
        # thresholds trip deterministically (background at ceil(.45*20)
        # = 9, standard at 14, interactive at 20).
        specs = _specs(max_queue=20, max_wait_ms=10_000)
        cluster = ClusterService(specs, ClusterConfig(workers=1))
        xs = _inputs(20, seed=5)
        try:
            for i in range(9):
                cluster.submit(xs[i], model="toy-0", priority="standard")
            with pytest.raises(ShedError) as err:
                cluster.submit(xs[9], model="toy-0", priority="background")
            assert err.value.tier == "background"
            assert err.value.tenant == "toy-0"
            cluster.submit(xs[10], model="toy-0", priority="standard")
            cluster.submit(xs[11], model="toy-0", priority="interactive")
            # Isolation: the other tenant's queue is empty, it admits.
            cluster.submit(xs[12], model="toy-1", priority="background")
            snap = cluster.stats_snapshot()
            assert snap["models"]["toy-0"]["shed"]["background"] == 1
            assert snap["models"]["toy-1"]["shed"]["background"] == 0
            assert snap["requests"]["shed"] == 1
        finally:
            cluster.stop(drain=False)


class TestClusterHTTP:
    @pytest.fixture()
    def served_cluster(self):
        cluster = ClusterService(_specs(), ClusterConfig(workers=2))
        cluster.start()
        assert cluster.wait_ready(timeout=60)
        server, _ = serve_in_thread(cluster, "127.0.0.1", 0)
        host, port = server.server_address[:2]
        try:
            yield f"http://{host}:{port}", cluster
        finally:
            server.shutdown()
            server.server_close()
            cluster.stop()

    @staticmethod
    def _post(base, payload):
        req = urllib.request.Request(
            f"{base}/predict", data=json.dumps(payload).encode("utf-8"),
            headers={"Content-Type": "application/json"})
        try:
            with urllib.request.urlopen(req, timeout=30) as resp:
                return resp.status, json.loads(resp.read())
        except urllib.error.HTTPError as exc:
            return exc.code, json.loads(exc.read())

    def test_models_endpoint_lists_routes(self, served_cluster):
        base, _ = served_cluster
        with urllib.request.urlopen(f"{base}/models", timeout=10) as resp:
            body = json.loads(resp.read())
        assert sorted(body["models"]) == ["toy-0", "toy-1"]

    def test_routed_predict_and_unknown_model_404(self, served_cluster):
        base, _ = served_cluster
        x = _inputs(1)[0].tolist()
        status, body = self._post(base, {"x": x, "model": "toy-1",
                                         "priority": "interactive"})
        assert status == 200
        assert isinstance(body["label"], int)
        status, body = self._post(base, {"x": x, "model": "toy-9"})
        assert status == 404
        assert "toy-9" in body["error"]
        assert body["models"] == ["toy-0", "toy-1"]

    def test_bad_priority_400(self, served_cluster):
        base, _ = served_cluster
        x = _inputs(1)[0].tolist()
        assert self._post(base, {"x": x, "model": "toy-0",
                                 "priority": "vip"})[0] == 400

    def test_metrics_scrape_under_concurrent_load(self, served_cluster):
        base, _ = served_cluster
        xs = _inputs(16, seed=8)
        statuses, scrapes = [], []
        lock = threading.Lock()

        def fire(i):
            status, _ = self._post(base, {"x": xs[i].tolist(),
                                          "model": f"toy-{i % 2}"})
            with lock:
                statuses.append(status)

        def scrape():
            for _ in range(4):
                with urllib.request.urlopen(f"{base}/metrics",
                                            timeout=30) as resp:
                    text = resp.read().decode("utf-8")
                with lock:
                    scrapes.append((resp.status, text))

        threads = ([threading.Thread(target=fire, args=(i,))
                    for i in range(16)]
                   + [threading.Thread(target=scrape) for _ in range(2)])
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert statuses == [200] * 16
        assert len(scrapes) == 8
        for status, text in scrapes:
            assert status == 200
            assert "cluster_workers_alive" in text
            assert "serve_requests_total" in text
