"""HTTP frontend tests: endpoints, error codes, backpressure mapping."""

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.serving import InferenceService, ServingConfig, serve_in_thread
from repro.serving.smoke import DIM, build_toy_magnet


def _get(base, path, timeout=10):
    try:
        with urllib.request.urlopen(f"{base}{path}", timeout=timeout) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def _post(base, path, payload, timeout=10):
    data = (payload if isinstance(payload, bytes)
            else json.dumps(payload).encode("utf-8"))
    req = urllib.request.Request(f"{base}{path}", data=data,
                                 headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


@pytest.fixture()
def served():
    """A running toy service + HTTP server on an ephemeral port."""
    service = InferenceService(
        build_toy_magnet(seed=11),
        ServingConfig(max_batch=8, max_wait_ms=2, max_queue=32))
    service.start()
    server, thread = serve_in_thread(service, "127.0.0.1", 0)
    host, port = server.server_address[:2]
    try:
        yield f"http://{host}:{port}", service
    finally:
        server.shutdown()
        server.server_close()
        service.stop()


def _x(seed=0):
    return np.random.default_rng(seed).random(DIM).astype(np.float32)


class TestEndpoints:
    def test_healthz_ok(self, served):
        base, _ = served
        status, body = _get(base, "/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["uptime_s"] >= 0

    def test_predict_round_trip(self, served):
        base, _ = served
        status, body = _post(base, "/predict",
                             {"x": _x().tolist(), "id": "req-1"})
        assert status == 200
        assert body["request_id"] == "req-1"
        assert isinstance(body["label"], int)
        assert isinstance(body["detected"], bool)
        assert set(body["detector_scores"]) == {"recon_l1", "jsd_T10"}
        assert body["batch_size"] >= 1

    def test_stats_accounts_requests(self, served):
        base, _ = served
        for i in range(3):
            _post(base, "/predict", {"x": _x(i).tolist()})
        status, stats = _get(base, "/stats")
        assert status == 200
        assert stats["requests"]["completed"] >= 3
        assert stats["batches"]["count"] >= 1
        assert "p95" in stats["latency_ms"]["total"]
        assert stats["config"]["max_batch"] == 8

    def test_metrics_prometheus_exposition(self, served):
        base, _ = served
        for i in range(2):
            _post(base, "/predict", {"x": _x(i).tolist()})
        with urllib.request.urlopen(f"{base}/metrics", timeout=10) as resp:
            assert resp.status == 200
            assert resp.headers["Content-Type"].startswith("text/plain")
            text = resp.read().decode("utf-8")
        assert "# TYPE serve_requests_total counter" in text
        assert "# TYPE serve_batch_size histogram" in text
        assert "serve_uptime_seconds" in text
        assert "serve_latency_total_ms_p95" in text
        assert "serve_healthy 1" in text

    def test_concurrent_predicts_all_answered(self, served):
        base, _ = served
        codes = []
        lock = threading.Lock()

        def fire(i):
            status, _ = _post(base, "/predict", {"x": _x(i).tolist()})
            with lock:
                codes.append(status)

        threads = [threading.Thread(target=fire, args=(i,)) for i in range(12)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert codes == [200] * 12


class TestErrorMapping:
    def test_unknown_path_404(self, served):
        base, _ = served
        assert _get(base, "/nope")[0] == 404
        assert _post(base, "/also/nope", {"x": []})[0] == 404

    def test_malformed_json_400(self, served):
        base, _ = served
        assert _post(base, "/predict", b"{not json")[0] == 400

    def test_missing_x_400(self, served):
        base, _ = served
        assert _post(base, "/predict", {"y": [1, 2]})[0] == 400

    def test_ragged_x_400(self, served):
        base, _ = served
        assert _post(base, "/predict", {"x": [[1, 2], [3]]})[0] == 400

    def test_non_string_id_400(self, served):
        base, _ = served
        assert _post(base, "/predict", {"x": _x().tolist(), "id": 7})[0] == 400

    def test_shape_mismatch_400(self, served):
        base, _ = served
        assert _post(base, "/predict", {"x": _x().tolist()})[0] == 200
        assert _post(base, "/predict", {"x": [0.0] * (DIM + 1)})[0] == 400

    def test_empty_body_400(self, served):
        base, _ = served
        req = urllib.request.Request(f"{base}/predict", data=b"",
                                     headers={"Content-Type":
                                              "application/json"})
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(req, timeout=10)
        assert err.value.code == 400


class TestBackpressureHTTP:
    def test_queue_full_maps_to_429(self):
        # Workers never started → the queue cannot drain; depth 1 fills
        # after a single in-process submit.
        service = InferenceService(
            build_toy_magnet(seed=12),
            ServingConfig(max_batch=4, max_wait_ms=10_000, max_queue=1))
        server, thread = serve_in_thread(service, "127.0.0.1", 0)
        host, port = server.server_address[:2]
        base = f"http://{host}:{port}"
        try:
            service.submit(_x())          # occupies the only queue slot
            status, body = _post(base, "/predict", {"x": _x().tolist()})
            assert status == 429
            assert "queue full" in body["error"]
        finally:
            server.shutdown()
            server.server_close()
            service.stop()

    def test_stopped_service_healthz_503(self):
        service = InferenceService(build_toy_magnet(seed=13),
                                   ServingConfig(max_wait_ms=1))
        service.start()
        server, thread = serve_in_thread(service, "127.0.0.1", 0)
        host, port = server.server_address[:2]
        base = f"http://{host}:{port}"
        try:
            service.stop()
            status, body = _get(base, "/healthz")
            assert status == 503
            status, _ = _post(base, "/predict", {"x": _x().tolist()})
            assert status == 503
        finally:
            server.shutdown()
            server.server_close()
