"""Tiered admission and AIMD adaptive-wait policy unit tests."""

import pytest

from repro.serving.batcher import MicroBatcher
from repro.serving.policy import (
    DEFAULT_SHED_THRESHOLDS,
    DEFAULT_TIER,
    PRIORITY_TIERS,
    AdaptiveWaitController,
    ShedError,
    TieredAdmission,
    normalize_tier,
)

pytestmark = pytest.mark.tier1


class TestNormalizeTier:
    def test_none_defaults_to_standard(self):
        assert normalize_tier(None) == DEFAULT_TIER == "standard"

    def test_known_tiers_pass_through_case_insensitive(self):
        for tier in PRIORITY_TIERS:
            assert normalize_tier(tier) == tier
            assert normalize_tier(tier.upper()) == tier

    def test_unknown_tier_rejected(self):
        with pytest.raises(ValueError, match="unknown priority"):
            normalize_tier("vip")


class TestTieredAdmission:
    def test_limits_scale_with_max_queue(self):
        adm = TieredAdmission(max_queue=100)
        assert adm.limits == {"interactive": 100, "standard": 70,
                              "background": 45}

    def test_background_sheds_first(self):
        adm = TieredAdmission(max_queue=20)
        # Depth 9 == background limit (ceil(0.45 * 20)): background
        # sheds, the higher tiers still admit.
        adm.admit("interactive", 9)
        adm.admit("standard", 9)
        with pytest.raises(ShedError) as err:
            adm.admit("background", 9)
        assert err.value.tier == "background"
        assert err.value.depth == 9
        assert err.value.limit == 9

    def test_interactive_keeps_the_full_queue(self):
        adm = TieredAdmission(max_queue=10)
        adm.admit("interactive", 9)       # just below max_queue: fine
        with pytest.raises(ShedError):
            adm.admit("interactive", 10)  # at the hard bound

    def test_shed_counts_per_tier(self):
        adm = TieredAdmission(max_queue=10, tenant="m0")
        for _ in range(3):
            with pytest.raises(ShedError):
                adm.admit("background", 9)
        with pytest.raises(ShedError) as err:
            adm.admit("standard", 8)
        assert "m0" in str(err.value)
        assert adm.snapshot() == {"interactive": 0, "standard": 1,
                                  "background": 3}

    def test_thresholds_validated(self):
        with pytest.raises(ValueError):
            TieredAdmission(10, thresholds=(1.0, 0.7))       # wrong arity
        with pytest.raises(ValueError):
            TieredAdmission(10, thresholds=(1.0, 0.7, 0.0))  # out of range
        with pytest.raises(ValueError):
            TieredAdmission(10, thresholds=(1.5, 0.7, 0.4))

    def test_tiny_queue_still_admits_something(self):
        adm = TieredAdmission(max_queue=1,
                              thresholds=DEFAULT_SHED_THRESHOLDS)
        # Every tier's limit is floored at 1 request.
        for tier in PRIORITY_TIERS:
            adm.admit(tier, 0)


class TestAdaptiveWait:
    def _controller(self, **kwargs):
        batcher = MicroBatcher(max_batch=8, max_wait_ms=2.0, max_queue=64)
        kwargs.setdefault("min_wait_ms", 0.25)
        kwargs.setdefault("max_wait_ms", 10.0)
        return AdaptiveWaitController(batcher, **kwargs), batcher

    def test_additive_increase_on_deep_queue(self):
        ctl, batcher = self._controller()
        before = ctl.wait_ms
        got = ctl.tick(depth=2 * batcher.max_batch)
        assert got == pytest.approx(before + ctl.increase_ms)
        assert batcher.max_wait_s * 1000.0 == pytest.approx(got)
        assert ctl.adjustments == 1

    def test_multiplicative_decrease_on_idle_queue(self):
        ctl, batcher = self._controller()
        got = ctl.tick(depth=0)
        assert got == pytest.approx(2.0 * ctl.decrease_factor)
        assert batcher.max_wait_s * 1000.0 == pytest.approx(got)

    def test_dead_band_between_thresholds(self):
        ctl, batcher = self._controller()
        before = ctl.wait_ms
        got = ctl.tick(depth=batcher.max_batch)   # between low and high
        assert got == before
        assert ctl.adjustments == 0

    def test_clamped_to_configured_bounds(self):
        ctl, batcher = self._controller(min_wait_ms=1.0, max_wait_ms=3.0)
        for _ in range(20):
            ctl.tick(depth=10 * batcher.max_batch)
        assert ctl.wait_ms == 3.0
        for _ in range(20):
            ctl.tick(depth=0)
        assert ctl.wait_ms == 1.0

    def test_reads_live_depth_by_default(self):
        ctl, batcher = self._controller()
        got = ctl.tick()                          # empty batcher: decrease
        assert got < 2.0

    def test_bounds_validated(self):
        batcher = MicroBatcher(max_batch=4, max_wait_ms=1.0, max_queue=8)
        with pytest.raises(ValueError):
            AdaptiveWaitController(batcher, min_wait_ms=2.0, max_wait_ms=1.0)
        with pytest.raises(ValueError):
            AdaptiveWaitController(batcher, min_wait_ms=0.1, max_wait_ms=1.0,
                                   decrease_factor=1.5)
